use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A duration or instant on the simulator's virtual clock.
///
/// Internally stored in *milliticks* (1/1000 of a tick) so that fractional
/// per-word costs like the paper's fitted `0.05·N·log₂N` communication term
/// can be charged exactly with integer arithmetic, keeping runs bit-for-bit
/// deterministic.
///
/// # Examples
///
/// ```
/// use aoft_sim::Ticks;
///
/// let t = Ticks::from_ticks(3) + Ticks::from_millis(500);
/// assert_eq!(t.as_ticks_f64(), 3.5);
/// assert_eq!(t.as_millis(), 3_500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Ticks(u64);

impl Ticks {
    /// The zero duration.
    pub const ZERO: Ticks = Ticks(0);

    /// A duration of whole ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        Ticks(ticks * 1_000)
    }

    /// A duration of milliticks (1/1000 tick).
    pub const fn from_millis(millis: u64) -> Self {
        Ticks(millis)
    }

    /// The duration in milliticks.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The duration in ticks, truncating sub-tick precision.
    pub const fn as_ticks(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in ticks as a float, for reporting and fitting.
    pub fn as_ticks_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0.saturating_sub(rhs.0))
    }

    /// The later of two instants.
    pub fn max(self, rhs: Ticks) -> Ticks {
        Ticks(self.0.max(rhs.0))
    }
}

impl aoft_net::Wire for Ticks {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, aoft_net::CodecError> {
        Ok(Ticks(u64::decode(input)?))
    }
}

impl Add for Ticks {
    type Output = Ticks;

    fn add(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 + rhs.0)
    }
}

impl AddAssign for Ticks {
    fn add_assign(&mut self, rhs: Ticks) {
        self.0 += rhs.0;
    }
}

impl Sub for Ticks {
    type Output = Ticks;

    /// # Panics
    ///
    /// Panics in debug builds if the result would be negative.
    fn sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 - rhs.0)
    }
}

impl Sum for Ticks {
    fn sum<I: Iterator<Item = Ticks>>(iter: I) -> Ticks {
        iter.fold(Ticks::ZERO, Add::add)
    }
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % 1_000 == 0 {
            write!(f, "{}t", self.0 / 1_000)
        } else {
            write!(f, "{:.3}t", self.as_ticks_f64())
        }
    }
}

/// Virtual-time cost parameters of the simulated multicomputer.
///
/// Communication follows the classical `α + β·len` model (startup plus
/// per-word transfer, one 32-bit word per sorted key); computation is charged
/// per abstract operation. The [`CostModel::ncube_1989`] preset is calibrated
/// so that the *fitted* constants of the reproduction land near the paper's
/// Section 5 table — see `aoft-models::fitting`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CostModel {
    /// α: per-message startup on a node-to-node link, in milliticks.
    pub send_startup_millis: u64,
    /// β: per-word transfer cost on a node-to-node link, in milliticks.
    pub per_word_millis: u64,
    /// α for host links (program/data download and result upload).
    pub host_send_startup_millis: u64,
    /// β for host links.
    pub host_per_word_millis: u64,
    /// Cost of one key comparison, in milliticks.
    pub compare_millis: u64,
    /// Cost of moving/copying one word, in milliticks.
    pub move_millis: u64,
}

impl CostModel {
    /// All unit costs (1 tick per message, word and operation).
    ///
    /// Useful for tests that count operations rather than model hardware.
    pub const fn unit() -> Self {
        Self {
            send_startup_millis: 1_000,
            per_word_millis: 1_000,
            host_send_startup_millis: 1_000,
            host_per_word_millis: 1_000,
            compare_millis: 1_000,
            move_millis: 1_000,
        }
    }

    /// Costs calibrated to the Ncube-era constants of the paper's Section 5
    /// table (clock ticks): message startup ≈ 16t so the `8·log₂²N`
    /// communication term emerges from the `n(n+1)/2` exchange steps;
    /// per-word ≈ 0.025t so the piggybacked sequences produce the
    /// `0.05·N·log₂N` term; host links with high per-word cost reproduce the
    /// `14·N` sequential transfer term; comparisons ≈ 0.45t reproduce the
    /// `0.45·N·log₂N` host sorting term.
    pub const fn ncube_1989() -> Self {
        Self {
            send_startup_millis: 16_000,
            per_word_millis: 25,
            host_send_startup_millis: 6_000,
            host_per_word_millis: 4_000,
            compare_millis: 450,
            move_millis: 150,
        }
    }

    /// Communication cost of one node-to-node message of `words` payload
    /// words.
    pub fn link_cost(&self, words: usize) -> Ticks {
        Ticks::from_millis(self.send_startup_millis + self.per_word_millis * words as u64)
    }

    /// Communication cost of one host-link message of `words` payload words.
    pub fn host_link_cost(&self, words: usize) -> Ticks {
        Ticks::from_millis(self.host_send_startup_millis + self.host_per_word_millis * words as u64)
    }

    /// Compute cost of `count` key comparisons.
    pub fn compare_cost(&self, count: usize) -> Ticks {
        Ticks::from_millis(self.compare_millis * count as u64)
    }

    /// Compute cost of moving `count` words.
    pub fn move_cost(&self, count: usize) -> Ticks {
        Ticks::from_millis(self.move_millis * count as u64)
    }
}

impl Default for CostModel {
    /// Defaults to the Ncube-calibrated model.
    fn default() -> Self {
        Self::ncube_1989()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_arithmetic() {
        let a = Ticks::from_ticks(2);
        let b = Ticks::from_millis(250);
        assert_eq!((a + b).as_millis(), 2_250);
        assert_eq!((a - b).as_millis(), 1_750);
        assert_eq!(a.max(b), a);
        assert_eq!(b.saturating_sub(a), Ticks::ZERO);
    }

    #[test]
    fn ticks_sum() {
        let total: Ticks = (1..=4).map(Ticks::from_ticks).sum();
        assert_eq!(total.as_ticks(), 10);
    }

    #[test]
    fn ticks_display() {
        assert_eq!(Ticks::from_ticks(5).to_string(), "5t");
        assert_eq!(Ticks::from_millis(1_500).to_string(), "1.500t");
    }

    #[test]
    fn unit_model_costs() {
        let m = CostModel::unit();
        assert_eq!(m.link_cost(3).as_ticks(), 4); // α + 3β
        assert_eq!(m.compare_cost(7).as_ticks(), 7);
        assert_eq!(m.move_cost(2).as_ticks(), 2);
    }

    #[test]
    fn ncube_model_shapes() {
        let m = CostModel::ncube_1989();
        // Startup dominates short messages; payload dominates long ones.
        assert!(m.link_cost(1).as_millis() < 2 * m.send_startup_millis);
        assert!(m.link_cost(10_000) > Ticks::from_ticks(100));
        // Host links are far more expensive per word than node links.
        assert!(m.host_per_word_millis > 10 * m.per_word_millis);
    }

    #[test]
    fn default_is_ncube() {
        assert_eq!(CostModel::default(), CostModel::ncube_1989());
    }
}
