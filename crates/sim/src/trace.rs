use std::fmt;

use aoft_hypercube::NodeId;
use serde::{Deserialize, Serialize};

use crate::Ticks;

/// What happened in a traced simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A message left this endpoint.
    Send {
        /// Destination endpoint.
        to: NodeId,
        /// Payload words.
        words: u64,
        /// Sender sequence number.
        seq: u64,
    },
    /// A message arrived at this endpoint.
    Recv {
        /// Source endpoint.
        from: NodeId,
        /// Payload words.
        words: u64,
    },
    /// Computation was charged to the local clock.
    Compute {
        /// Milliticks charged.
        millis: u64,
    },
    /// An adversary suppressed an outgoing message.
    AdversaryDropped {
        /// The destination that never saw it.
        to: NodeId,
    },
    /// An adversary rewrote or fanned out an outgoing message.
    AdversaryRewrote {
        /// The original destination.
        to: NodeId,
        /// Packets actually delivered.
        delivered: u32,
    },
    /// An executable assertion fired; the run is fail-stopping.
    ErrorSignalled {
        /// Application-level violation code.
        code: u32,
    },
    /// A frame from another job was discarded on a reused link.
    StaleDropped {
        /// The neighbor whose link carried the stale frame.
        from: NodeId,
        /// The job id the stale frame was tagged with.
        job: u64,
    },
}

/// One traced event at one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// The endpoint at which the event happened ([`HOST_ID`](crate::HOST_ID)
    /// for the host).
    pub node: NodeId,
    /// Virtual time on that endpoint's clock.
    pub at: Ticks,
    /// The event itself.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} @ {}] ", self.node, self.at)?;
        match self.kind {
            EventKind::Send { to, words, seq } => write!(f, "send #{seq} -> {to} ({words}w)"),
            EventKind::Recv { from, words } => write!(f, "recv <- {from} ({words}w)"),
            EventKind::Compute { millis } => write!(f, "compute {millis}mt"),
            EventKind::AdversaryDropped { to } => write!(f, "ADVERSARY dropped -> {to}"),
            EventKind::AdversaryRewrote { to, delivered } => {
                write!(f, "ADVERSARY rewrote -> {to} ({delivered} delivered)")
            }
            EventKind::ErrorSignalled { code } => write!(f, "ERROR signalled (code {code})"),
            EventKind::StaleDropped { from, job } => {
                write!(f, "stale frame <- {from} (job {job}) dropped")
            }
        }
    }
}

/// A merged, time-ordered run trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    pub(crate) fn from_parts(parts: Vec<Vec<Event>>) -> Self {
        let mut events: Vec<Event> = parts.into_iter().flatten().collect();
        events.sort_by_key(|e| (e.at, e.node));
        Self { events }
    }

    /// All events in (virtual time, node) order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events observed at one endpoint, in time order.
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.node == node)
    }

    /// `true` if no events were recorded (tracing disabled or trivial run).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Renders the trace as a Mermaid sequence diagram — paste into any
    /// Mermaid renderer to *see* the exchange pattern, adversary actions
    /// and the fail-stop.
    ///
    /// Sends become arrows annotated with the payload size; adversary drops
    /// and rewrites become self-notes; error signals become notes to the
    /// host. Receive events are folded into the arrows (Mermaid has no
    /// separate receive primitive).
    ///
    /// # Examples
    ///
    /// ```
    /// use aoft_hypercube::Hypercube;
    /// use aoft_sim::{Engine, NodeCtx, Program, SimConfig, SimError, Word};
    ///
    /// struct Ping;
    /// impl Program<Word> for Ping {
    ///     type Output = ();
    ///     fn run(&self, ctx: &mut NodeCtx<'_, Word>) -> Result<(), SimError> {
    ///         let partner = ctx.id().neighbor(0);
    ///         ctx.send(partner, Word(1))?;
    ///         ctx.recv_from(partner)?;
    ///         Ok(())
    ///     }
    /// }
    ///
    /// let engine = Engine::new(Hypercube::new(1)?, SimConfig::new().trace(true));
    /// let report = engine.run(&Ping);
    /// let diagram = report.trace().to_mermaid();
    /// assert!(diagram.starts_with("sequenceDiagram"));
    /// assert!(diagram.contains("P0->>P1"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn to_mermaid(&self) -> String {
        use std::fmt::Write as _;

        let name = |node: NodeId| -> String {
            if node == crate::HOST_ID {
                "HOST".to_string()
            } else {
                node.to_string()
            }
        };
        let mut out = String::from("sequenceDiagram\n");
        let mut participants: Vec<NodeId> = self.events.iter().map(|e| e.node).collect();
        participants.sort();
        participants.dedup();
        for p in &participants {
            let _ = writeln!(out, "    participant {}", name(*p));
        }
        for event in &self.events {
            match event.kind {
                EventKind::Send { to, words, .. } => {
                    let _ = writeln!(
                        out,
                        "    {}->>{}: {words}w @ {}",
                        name(event.node),
                        name(to),
                        event.at
                    );
                }
                EventKind::AdversaryDropped { to } => {
                    let _ = writeln!(
                        out,
                        "    Note over {}: ADVERSARY drops msg to {}",
                        name(event.node),
                        name(to)
                    );
                }
                EventKind::AdversaryRewrote { to, delivered } => {
                    let _ = writeln!(
                        out,
                        "    Note over {}: ADVERSARY rewrites msg to {} ({delivered} delivered)",
                        name(event.node),
                        name(to)
                    );
                }
                EventKind::ErrorSignalled { code } => {
                    let _ = writeln!(
                        out,
                        "    Note over {}: ERROR code {code} -> fail-stop",
                        name(event.node)
                    );
                }
                // Receives are implied by the arrows; compute and stale
                // drops are noise at diagram granularity.
                EventKind::Recv { .. }
                | EventKind::Compute { .. }
                | EventKind::StaleDropped { .. } => {}
            }
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for event in &self.events {
            writeln!(f, "{event}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(node: u32, at: u64, kind: EventKind) -> Event {
        Event {
            node: NodeId::new(node),
            at: Ticks::from_ticks(at),
            kind,
        }
    }

    #[test]
    fn merge_orders_by_time_then_node() {
        let trace = Trace::from_parts(vec![
            vec![event(1, 5, EventKind::Compute { millis: 10 })],
            vec![
                event(0, 5, EventKind::Compute { millis: 20 }),
                event(0, 2, EventKind::Compute { millis: 30 }),
            ],
        ]);
        let times: Vec<(u64, u32)> = trace
            .events()
            .iter()
            .map(|e| (e.at.as_ticks(), e.node.raw()))
            .collect();
        assert_eq!(times, vec![(2, 0), (5, 0), (5, 1)]);
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        assert_eq!(trace.for_node(NodeId::new(0)).count(), 2);
    }

    #[test]
    fn mermaid_renders_sends_and_notes() {
        let trace = Trace::from_parts(vec![vec![
            event(
                0,
                1,
                EventKind::Send {
                    to: NodeId::new(1),
                    words: 3,
                    seq: 0,
                },
            ),
            event(0, 2, EventKind::AdversaryDropped { to: NodeId::new(1) }),
            event(1, 3, EventKind::ErrorSignalled { code: 6 }),
            event(1, 3, EventKind::Compute { millis: 5 }),
        ]]);
        let diagram = trace.to_mermaid();
        assert!(diagram.starts_with("sequenceDiagram"));
        assert!(diagram.contains("participant P0"));
        assert!(diagram.contains("P0->>P1: 3w @ 1t"));
        assert!(diagram.contains("ADVERSARY drops"));
        assert!(diagram.contains("ERROR code 6"));
        assert!(!diagram.contains("Compute"), "compute is elided");
    }

    #[test]
    fn mermaid_names_the_host() {
        let trace = Trace::from_parts(vec![vec![event(
            0,
            1,
            EventKind::Send {
                to: crate::HOST_ID,
                words: 1,
                seq: 0,
            },
        )]]);
        assert!(trace.to_mermaid().contains("P0->>HOST"));
    }

    #[test]
    fn display_all_kinds() {
        let kinds = [
            EventKind::Send {
                to: NodeId::new(1),
                words: 2,
                seq: 0,
            },
            EventKind::Recv {
                from: NodeId::new(1),
                words: 2,
            },
            EventKind::Compute { millis: 450 },
            EventKind::AdversaryDropped { to: NodeId::new(3) },
            EventKind::AdversaryRewrote {
                to: NodeId::new(3),
                delivered: 2,
            },
            EventKind::ErrorSignalled { code: 4 },
        ];
        for kind in kinds {
            let text = event(0, 1, kind).to_string();
            assert!(text.starts_with("[P0 @ 1t]"), "{text}");
        }
        let trace = Trace::from_parts(vec![vec![event(0, 1, kinds[0])]]);
        assert!(trace.to_string().contains("send #0"));
    }
}
