//! Engine-level behaviour tests: message delivery, virtual time, fail-stop,
//! adversaries, host traffic and determinism.

use std::time::Duration;

use aoft_hypercube::{Hypercube, NodeId};
use aoft_sim::{
    Action, Adversary, AdversarySet, CostModel, Engine, NodeCtx, Program, SendContext, SimConfig,
    SimError, Ticks, Word,
};

fn engine(dim: u32) -> Engine {
    Engine::new(
        Hypercube::new(dim).unwrap(),
        SimConfig::new()
            .cost_model(CostModel::unit())
            .recv_timeout(Duration::from_millis(300)),
    )
}

/// Every node sends its label across every dimension and checks what it
/// hears back.
struct AllDimExchange;

impl Program<Word> for AllDimExchange {
    type Output = Vec<u32>;

    fn run(&self, ctx: &mut NodeCtx<'_, Word>) -> Result<Vec<u32>, SimError> {
        let mut heard = Vec::new();
        for d in 0..ctx.dim() {
            let partner = ctx.id().neighbor(d);
            ctx.send(partner, Word(ctx.id().raw()))?;
            heard.push(ctx.recv_from(partner)?.0);
        }
        Ok(heard)
    }
}

#[test]
fn exchange_delivers_correct_values() {
    let report = engine(3).run(&AllDimExchange);
    let outputs = report.outputs().expect("honest run completes");
    for (i, heard) in outputs.iter().enumerate() {
        let me = NodeId::new(i as u32);
        let expected: Vec<u32> = (0..3).map(|d| me.neighbor(d).raw()).collect();
        assert_eq!(heard, &expected, "node {me}");
    }
}

#[test]
fn virtual_time_is_deterministic() {
    let a = engine(4).run(&AllDimExchange);
    let b = engine(4).run(&AllDimExchange);
    assert_eq!(a.metrics().elapsed(), b.metrics().elapsed());
    for (ma, mb) in a.metrics().nodes.iter().zip(&b.metrics().nodes) {
        assert_eq!(ma, mb, "per-node metrics identical across runs");
    }
}

#[test]
fn unit_cost_accounting_per_node() {
    // Unit model: each send costs α + β·1 = 2 ticks. Each node sends once
    // per dimension.
    let report = engine(2).run(&AllDimExchange);
    for m in &report.metrics().nodes {
        assert_eq!(m.msgs_sent, 2);
        assert_eq!(m.words_sent, 2);
        assert_eq!(m.msgs_received, 2);
        assert_eq!(m.send_time, Ticks::from_ticks(4));
        assert_eq!(m.compute_time, Ticks::ZERO);
    }
    // All nodes act in lockstep; nobody should finish before 4 ticks.
    assert_eq!(report.metrics().elapsed(), Ticks::from_ticks(4));
}

#[test]
fn charges_accumulate_compute_time() {
    let program = |ctx: &mut NodeCtx<'_, Word>| -> Result<(), SimError> {
        ctx.charge_compares(3);
        ctx.charge_moves(5);
        Ok(())
    };
    let report = engine(1).run(&program);
    for m in &report.metrics().nodes {
        assert_eq!(m.compute_time, Ticks::from_ticks(8));
        assert_eq!(m.finished_at, Ticks::from_ticks(8));
    }
}

#[test]
fn recv_synchronizes_clocks() {
    // Node 0 computes for 100 ticks then sends; node 1 receives and must
    // see its clock jump past 100.
    let program = |ctx: &mut NodeCtx<'_, Word>| -> Result<u64, SimError> {
        if ctx.id().raw() == 0 {
            ctx.charge(Ticks::from_ticks(100));
            ctx.send(NodeId::new(1), Word(1))?;
        } else {
            ctx.recv_from(NodeId::new(0))?;
        }
        Ok(ctx.now().as_ticks())
    };
    let outputs = engine(1).run(&program).into_outputs().unwrap();
    assert_eq!(outputs[0], 102); // 100 compute + 2 send
    assert_eq!(outputs[1], 102); // synced to availability time
}

#[test]
fn send_to_non_neighbor_is_rejected() {
    let program = |ctx: &mut NodeCtx<'_, Word>| -> Result<(), SimError> {
        if ctx.id().raw() == 0 {
            match ctx.send(NodeId::new(3), Word(0)) {
                Err(SimError::NotANeighbor { from, to }) => {
                    assert_eq!(from, NodeId::new(0));
                    assert_eq!(to, NodeId::new(3));
                }
                other => panic!("expected NotANeighbor, got {other:?}"),
            }
        }
        Ok(())
    };
    let report = engine(2).run(&program);
    assert!(!report.is_fail_stop());
}

#[test]
fn recv_from_outside_cube_is_rejected() {
    let program = |ctx: &mut NodeCtx<'_, Word>| -> Result<(), SimError> {
        match ctx.recv_from(NodeId::new(9)) {
            Err(SimError::NotANeighbor { .. }) => Ok(()),
            other => panic!("expected NotANeighbor, got {other:?}"),
        }
    };
    assert!(!engine(1).run(&program).is_fail_stop());
}

#[test]
fn missing_message_times_out() {
    let program = |ctx: &mut NodeCtx<'_, Word>| -> Result<(), SimError> {
        if ctx.id().raw() == 1 {
            // Node 0 never sends: we must observe a timeout (assumption 4).
            match ctx.recv_from(NodeId::new(0)) {
                Err(SimError::MissingMessage { from, .. }) => {
                    assert_eq!(from, NodeId::new(0));
                }
                // Node 0 may already have exited, closing the link.
                Err(SimError::LinkClosed { .. }) => {}
                other => panic!("expected missing message, got {other:?}"),
            }
        }
        Ok(())
    };
    assert!(!engine(1).run(&program).is_fail_stop());
}

#[test]
fn signal_error_fail_stops_whole_machine() {
    let program = |ctx: &mut NodeCtx<'_, Word>| -> Result<(), SimError> {
        if ctx.id().raw() == 2 {
            ctx.signal_error(42, "synthetic violation");
            return Err(SimError::Cancelled);
        }
        // Everyone else blocks on a message that never comes; cancellation
        // must wake them long before the (long) timeout.
        let partner = ctx.id().neighbor(0);
        match ctx.recv_from(partner) {
            Err(SimError::Cancelled) | Err(SimError::LinkClosed { .. }) => Ok(()),
            Err(SimError::MissingMessage { .. }) => Ok(()),
            other => panic!("expected cancellation, got {other:?}"),
        }
    };
    let eng = Engine::new(
        Hypercube::new(3).unwrap(),
        SimConfig::new()
            .cost_model(CostModel::unit())
            .recv_timeout(Duration::from_secs(30)),
    );
    let start = std::time::Instant::now();
    let report = eng.run(&program);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "cancel wakes receivers"
    );
    assert!(report.is_fail_stop());
    let primary = &report.reports()[0];
    assert_eq!(primary.detector, NodeId::new(2));
    assert_eq!(primary.code, 42);
    assert!(primary.detail.contains("synthetic"));
}

#[test]
fn node_error_without_signal_still_fails_run() {
    let program = |ctx: &mut NodeCtx<'_, Word>| -> Result<(), SimError> {
        if ctx.id().raw() == 0 {
            Err(SimError::MissingMessage {
                from: NodeId::new(1),
                waited: Duration::from_millis(1),
            })
        } else {
            Ok(())
        }
    };
    let report = engine(1).run(&program);
    assert!(report.is_fail_stop());
    assert_eq!(report.reports()[0].code, 0);
    assert!(report.reports()[0].detail.contains("runtime failure"));
}

/// Adversary that corrupts the payload of every message.
struct FlipBits;

impl Adversary<Word> for FlipBits {
    fn intercept(&mut self, _ctx: &SendContext, payload: Word) -> Action<Word> {
        Action::Deliver(Word(payload.0 ^ 0xFFFF))
    }

    fn label(&self) -> &str {
        "flip-bits"
    }
}

#[test]
fn adversary_corrupts_payloads() {
    let mut advs = AdversarySet::honest(2);
    advs.install(NodeId::new(0), Box::new(FlipBits));
    let report = engine(1).run_faulty(&AllDimExchange, advs);
    let outputs = report.outputs().expect("corruption alone does not block");
    assert_eq!(outputs[1], vec![0xFFFF], "node 1 sees corrupted value");
    assert_eq!(outputs[0], vec![1], "honest node 1 delivered cleanly");
}

/// Adversary that silently drops everything.
struct Mute;

impl Adversary<Word> for Mute {
    fn intercept(&mut self, _ctx: &SendContext, _payload: Word) -> Action<Word> {
        Action::Drop
    }
}

#[test]
fn dropped_messages_surface_as_missing() {
    let program = |ctx: &mut NodeCtx<'_, Word>| -> Result<bool, SimError> {
        let partner = ctx.id().neighbor(0);
        ctx.send(partner, Word(7))?;
        match ctx.recv_from(partner) {
            Ok(_) => Ok(true),
            Err(SimError::MissingMessage { .. }) | Err(SimError::LinkClosed { .. }) => Ok(false),
            Err(other) => Err(other),
        }
    };
    let mut advs = AdversarySet::honest(2);
    advs.install(NodeId::new(0), Box::new(Mute));
    let report = engine(1).run_faulty(&program, advs);
    let outputs = report.outputs().expect("nodes handle the loss themselves");
    assert!(outputs[0], "faulty node still receives from honest partner");
    assert!(!outputs[1], "honest node sees the message vanish");
}

/// Adversary that reroutes a message to a different neighbor with a bogus
/// payload (Fan action).
struct Reroute;

impl Adversary<Word> for Reroute {
    fn intercept(&mut self, ctx: &SendContext, payload: Word) -> Action<Word> {
        // Send the true payload to the intended destination AND a forged
        // word to the dimension-1 neighbor.
        Action::Fan(vec![(ctx.dst, payload), (ctx.src.neighbor(1), Word(999))])
    }
}

#[test]
fn fan_action_delivers_to_multiple_neighbors() {
    let program = |ctx: &mut NodeCtx<'_, Word>| -> Result<Option<u32>, SimError> {
        match ctx.id().raw() {
            0 => {
                ctx.send(NodeId::new(1), Word(5))?;
                Ok(None)
            }
            1 => Ok(Some(ctx.recv_from(NodeId::new(0))?.0)),
            2 => Ok(Some(ctx.recv_from(NodeId::new(0))?.0)),
            _ => Ok(None),
        }
    };
    let mut advs = AdversarySet::honest(4);
    advs.install(NodeId::new(0), Box::new(Reroute));
    let report = engine(2).run_faulty(&program, advs);
    let outputs = report.outputs().unwrap();
    assert_eq!(outputs[1], Some(5));
    assert_eq!(outputs[2], Some(999), "forged message reached node 2");
}

#[test]
fn host_gather_and_scatter() {
    let program = |ctx: &mut NodeCtx<'_, Word>| -> Result<u32, SimError> {
        ctx.send_host(Word(ctx.id().raw() * 10))?;
        Ok(ctx.recv_host()?.0)
    };
    let eng = engine(2);
    let (report, gathered) = eng.run_with_host(&program, AdversarySet::honest(4), |host| {
        let values = host.gather().expect("all nodes upload");
        let doubled: Vec<Word> = values.iter().map(|w| Word(w.0 * 2)).collect();
        host.scatter(doubled).expect("all nodes alive");
        values.iter().map(|w| w.0).collect::<Vec<u32>>()
    });
    assert_eq!(gathered, vec![0, 10, 20, 30]);
    let outputs = report.outputs().unwrap();
    assert_eq!(outputs, &[0, 20, 40, 60]);
    // Host accounting: 4 receives + 4 sends.
    assert_eq!(report.metrics().host.msgs_sent, 4);
    assert_eq!(report.metrics().host.msgs_received, 4);
}

#[test]
fn host_can_signal_error() {
    let program = |ctx: &mut NodeCtx<'_, Word>| -> Result<(), SimError> {
        ctx.send_host(Word(ctx.id().raw()))?;
        Ok(())
    };
    let eng = engine(1);
    let (report, ()) = eng.run_with_host(&program, AdversarySet::honest(2), |host| {
        let _ = host.gather();
        host.signal_error(9, "host rejected the result");
    });
    assert!(report.is_fail_stop());
    assert_eq!(report.reports()[0].code, 9);
    assert_eq!(report.reports()[0].detector, aoft_sim::HOST_ID);
}

#[test]
fn trace_records_send_and_recv() {
    let eng = Engine::new(
        Hypercube::new(1).unwrap(),
        SimConfig::new()
            .cost_model(CostModel::unit())
            .recv_timeout(Duration::from_millis(300))
            .trace(true),
    );
    let report = eng.run(&AllDimExchange);
    let trace = report.trace();
    assert!(!trace.is_empty());
    let text = trace.to_string();
    assert!(text.contains("send #0"), "{text}");
    assert!(text.contains("recv <-"), "{text}");
    // Two sends + two recvs in total.
    assert_eq!(trace.len(), 4);
}

#[test]
fn trace_disabled_by_default() {
    let report = engine(1).run(&AllDimExchange);
    assert!(report.trace().is_empty());
}

#[test]
fn larger_cube_runs_complete() {
    // 128 threads: a smoke test that the engine scales past toy sizes.
    let report = engine(7).run(&AllDimExchange);
    assert_eq!(report.outputs().unwrap().len(), 128);
}

#[test]
fn zero_dim_machine_runs_single_node() {
    let program =
        |ctx: &mut NodeCtx<'_, Word>| -> Result<u32, SimError> { Ok(ctx.machine_size() as u32) };
    let report = engine(0).run(&program);
    assert_eq!(report.outputs(), Some(&[1u32][..]));
}
