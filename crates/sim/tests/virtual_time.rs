//! Virtual-time semantics: the Lamport max rule, cost charging, idle
//! accounting and end-to-end determinism of the simulated clock.

use std::time::Duration;

use aoft_hypercube::{Hypercube, NodeId};
use aoft_sim::{CostModel, Engine, NodeCtx, Program, SimConfig, SimError, Ticks, Word};
use proptest::prelude::*;

fn engine_with(cost: CostModel, dim: u32) -> Engine {
    Engine::new(
        Hypercube::new(dim).unwrap(),
        SimConfig::new()
            .cost_model(cost)
            .recv_timeout(Duration::from_millis(500)),
    )
}

/// A two-node pipeline: node 0 computes `work` ticks then sends; node 1
/// receives and computes `work` more.
struct Pipeline {
    work: u64,
}

impl Program<Word> for Pipeline {
    type Output = (u64, u64, u64); // (now, idle_observable?, compute)

    fn run(&self, ctx: &mut NodeCtx<'_, Word>) -> Result<Self::Output, SimError> {
        if ctx.id().raw() == 0 {
            ctx.charge(Ticks::from_ticks(self.work));
            ctx.send(NodeId::new(1), Word(1))?;
        } else {
            ctx.recv_from(NodeId::new(0))?;
            ctx.charge(Ticks::from_ticks(self.work));
        }
        Ok((ctx.now().as_ticks(), 0, 0))
    }
}

#[test]
fn pipeline_critical_path_adds_up() {
    // Unit model: send cost = α + β = 2 ticks.
    let engine = engine_with(CostModel::unit(), 1);
    let report = engine.run(&Pipeline { work: 10 });
    let metrics = report.metrics();
    // Node 0: 10 compute + 2 send = 12. Node 1: sync to 12, + 10 = 22.
    assert_eq!(metrics.nodes[0].finished_at, Ticks::from_ticks(12));
    assert_eq!(metrics.nodes[1].finished_at, Ticks::from_ticks(22));
    assert_eq!(metrics.nodes[1].idle_time, Ticks::from_ticks(12));
    assert_eq!(metrics.elapsed(), Ticks::from_ticks(22));
}

#[test]
fn receiver_ahead_of_sender_accrues_no_idle() {
    // Node 1 computes longer than node 0 takes to send: the message waits
    // in the queue, the receive is free.
    struct Busy;
    impl Program<Word> for Busy {
        type Output = u64;
        fn run(&self, ctx: &mut NodeCtx<'_, Word>) -> Result<u64, SimError> {
            if ctx.id().raw() == 0 {
                ctx.send(NodeId::new(1), Word(0))?;
            } else {
                ctx.charge(Ticks::from_ticks(100));
                ctx.recv_from(NodeId::new(0))?;
            }
            Ok(ctx.now().as_ticks())
        }
    }
    let engine = engine_with(CostModel::unit(), 1);
    let report = engine.run(&Busy);
    assert_eq!(report.metrics().nodes[1].idle_time, Ticks::ZERO);
    assert_eq!(
        report.metrics().nodes[1].finished_at,
        Ticks::from_ticks(100),
        "clock does not move backwards nor jump forward"
    );
}

#[test]
fn wire_size_drives_send_cost() {
    struct SendVec(usize);
    impl Program<Vec<u32>> for SendVec {
        type Output = ();
        fn run(&self, ctx: &mut NodeCtx<'_, Vec<u32>>) -> Result<(), SimError> {
            if ctx.id().raw() == 0 {
                ctx.send(NodeId::new(1), vec![7u32; self.0])?;
            } else {
                ctx.recv_from(NodeId::new(0))?;
            }
            Ok(())
        }
    }
    let engine = engine_with(CostModel::unit(), 1);
    let small = engine.run(&SendVec(4)).metrics().nodes[0].send_time;
    let large = engine.run(&SendVec(64)).metrics().nodes[0].send_time;
    // Unit model: cost = 1 + (len + 1 framing) ticks.
    assert_eq!(small, Ticks::from_ticks(6));
    assert_eq!(large, Ticks::from_ticks(66));
}

#[test]
fn ncube_model_charges_fractional_words() {
    // β = 0.025 ticks/word must accumulate exactly in milliticks.
    let engine = engine_with(CostModel::ncube_1989(), 1);
    struct OneWord;
    impl Program<Word> for OneWord {
        type Output = ();
        fn run(&self, ctx: &mut NodeCtx<'_, Word>) -> Result<(), SimError> {
            if ctx.id().raw() == 0 {
                ctx.send(NodeId::new(1), Word(1))?;
            } else {
                ctx.recv_from(NodeId::new(0))?;
            }
            Ok(())
        }
    }
    let report = engine.run(&OneWord);
    assert_eq!(report.metrics().nodes[0].send_time.as_millis(), 16_000 + 25);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The pipeline end time is exactly 2·work + send for any work amount —
    /// virtual time is deterministic arithmetic, not measurement.
    #[test]
    fn pipeline_time_formula(work in 0u64..10_000) {
        let engine = engine_with(CostModel::unit(), 1);
        let report = engine.run(&Pipeline { work });
        prop_assert_eq!(
            report.metrics().elapsed(),
            Ticks::from_ticks(2 * work + 2)
        );
    }

    /// Tick arithmetic round-trips through milliticks.
    #[test]
    fn ticks_round_trip(millis in 0u64..10_000_000) {
        let t = Ticks::from_millis(millis);
        prop_assert_eq!(t.as_millis(), millis);
        prop_assert_eq!(t.as_ticks(), millis / 1000);
        prop_assert!((t.as_ticks_f64() - millis as f64 / 1000.0).abs() < 1e-9);
    }
}

#[test]
fn ring_relay_accumulates_latency() {
    // A message relayed around a 8-node Gray-code ring: the final clock
    // must be exactly hops × send_cost.
    struct Relay {
        ring: Vec<NodeId>,
    }
    impl Program<Word> for Relay {
        type Output = u64;
        fn run(&self, ctx: &mut NodeCtx<'_, Word>) -> Result<u64, SimError> {
            let pos = self
                .ring
                .iter()
                .position(|&n| n == ctx.id())
                .expect("every node is on the ring");
            if pos == 0 {
                ctx.send(self.ring[1], Word(0))?;
            } else {
                let w = ctx.recv_from(self.ring[pos - 1])?;
                if pos + 1 < self.ring.len() {
                    ctx.send(self.ring[pos + 1], Word(w.0 + 1))?;
                }
            }
            Ok(ctx.now().as_ticks())
        }
    }
    let ring = aoft_hypercube::gray::ring_embedding(3);
    let engine = engine_with(CostModel::unit(), 3);
    let report = engine.run(&Relay { ring: ring.clone() });
    let outputs = report.outputs().unwrap();
    // Node at ring position 7 received after 7 sends of 2 ticks each.
    let last = ring[7].index();
    assert_eq!(outputs[last], 14);
}
