//! The micro-batcher at the admission door.
//!
//! A d=3 `S_FT` run is ~30 lockstep hops, and a resident service pays that
//! per-hop latency once per *job* — even though each hop moves only a few
//! KiB. The batcher amortizes it: a worker claiming work coalesces up to
//! [`SvcConfig::batch_max`] *compatible* queued jobs into one composite-key
//! sort ([`aoft_sort::composite`]), so one cube attempt answers the whole
//! batch. Per Dwork–Halpern–Waarts economics the fault-tolerance overhead
//! is per-round, not per-key: B jobs per round costs ~1/B of the per-job
//! overhead.
//!
//! Flush policy (who decides a batch is done growing):
//!
//! * **size** — the batch reached `batch_max`;
//! * **deadline** — the flush window ([`SvcConfig::batch_flush`], tracked
//!   on the same [`TimerWheel`] the reactor uses) expired while the queue
//!   was empty;
//! * **boundary** — the next queued job is incompatible; it stays queued
//!   (FIFO order is never reordered around) and the batch flushes early;
//! * **solo** — batching is off (`batch_max = 1`), or the *first* job
//!   claimed is itself incompatible: it runs alone immediately, paying no
//!   flush wait at all.
//!
//! Compatibility is conservative: ascending direction, no fault plan, no
//! trace capture, and every key inside the composite codec's reduced
//! range. Anything else takes the solo path — the batcher never changes
//! what a job computes, only whether it shares a ride.

use std::time::{Duration, Instant};

use aoft_net::TimerWheel;
use aoft_sort::{CompositeCodec, SortDirection};

use crate::config::SvcConfig;
use crate::job::{JobId, JobSpec};
use crate::queue::{JobQueue, PopMore, QueuedJob};

/// A flushed batch: one or more jobs bound for a single cube attempt.
pub(crate) struct Batch {
    /// The coalesced jobs, in admission order (the order of their
    /// composite-key segments).
    pub jobs: Vec<QueuedJob>,
    /// Which rule flushed the batch (`solo`, `size`, `deadline`,
    /// `boundary`) — the `aoft_batch_flushes_total` label.
    pub trigger: &'static str,
}

/// Coalesces queued jobs into batches for the worker loop.
pub(crate) struct Batcher {
    max: usize,
    flush: Duration,
    codec: CompositeCodec,
}

impl Batcher {
    pub fn new(config: &SvcConfig) -> Self {
        Self {
            max: config.batch_max,
            flush: config.batch_flush,
            codec: CompositeCodec::for_batch_max(config.batch_max),
        }
    }

    /// The codec batched attempts encode with (fixed by `batch_max`, so
    /// every batch of this service shares one key-range rule).
    pub fn codec(&self) -> CompositeCodec {
        self.codec
    }

    /// `true` when `spec` may share a composite-key attempt: the demux
    /// relies on ascending lexicographic order, the fault plan and trace
    /// hooks are per-attempt (not per-rider), and every key must survive
    /// the codec's reduced range.
    pub fn compatible(&self, spec: &JobSpec) -> bool {
        spec.direction == SortDirection::Ascending
            && spec.fault_plan.is_none()
            && !spec.capture_trace
            && spec.keys.iter().all(|&k| self.codec.fits(k))
    }

    /// Blocks for the next batch; `None` once the queue is stopped and
    /// drained. The first claimed job opens the batch and starts the flush
    /// timer; companions are gathered until a flush rule fires.
    pub fn next_batch(&self, queue: &JobQueue) -> Option<Batch> {
        let first = queue.pop()?;
        if self.max <= 1 || !self.compatible(&first.spec) {
            // Incompatible or batching off: run alone, pay no flush wait.
            return Some(Batch {
                jobs: vec![first],
                trigger: "solo",
            });
        }
        let mut wheel: TimerWheel<JobId> = TimerWheel::new();
        wheel.schedule(Instant::now() + self.flush, first.id);
        let deadline = wheel.next_deadline().expect("flush timer just scheduled");
        let mut jobs = vec![first];
        let trigger = loop {
            if jobs.len() >= self.max {
                break "size";
            }
            match queue.pop_compatible(deadline, |job| self.compatible(&job.spec)) {
                PopMore::Job(job) => jobs.push(job),
                PopMore::Boundary => break "boundary",
                PopMore::TimedOut => {
                    debug_assert!(wheel.pop_expired(Instant::now()).is_some());
                    break "deadline";
                }
                // Shutdown mid-gather: flush what we hold — these jobs are
                // claimed and must still be answered.
                PopMore::Stopped => break "deadline",
            }
        };
        Some(Batch { jobs, trigger })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoft_faults::FaultPlan;
    use crossbeam_channel::unbounded;

    fn config(batch_max: usize) -> SvcConfig {
        SvcConfig::new(3)
            .batch_max(batch_max)
            .batch_flush(Duration::from_millis(10))
    }

    fn queued(id: u64, spec: JobSpec) -> QueuedJob {
        let (reply, _rx) = unbounded();
        QueuedJob {
            id: JobId(id),
            spec,
            submitted_at: Instant::now(),
            reply,
        }
    }

    #[test]
    fn size_trigger_fills_the_batch() {
        let batcher = Batcher::new(&config(3));
        let queue = JobQueue::new(16);
        for id in 0..5 {
            queue
                .push(queued(id, JobSpec::new(vec![1, 2])))
                .ok()
                .unwrap();
        }
        let batch = batcher.next_batch(&queue).unwrap();
        assert_eq!(batch.trigger, "size");
        assert_eq!(batch.jobs.len(), 3);
        assert_eq!(batch.jobs[0].id, JobId(0), "admission order");
        assert_eq!(queue.len(), 2, "the rest stays queued");
    }

    #[test]
    fn deadline_trigger_flushes_a_lonely_job() {
        let batcher = Batcher::new(&config(4));
        let queue = JobQueue::new(16);
        queue.push(queued(1, JobSpec::new(vec![7]))).ok().unwrap();
        let before = Instant::now();
        let batch = batcher.next_batch(&queue).unwrap();
        assert_eq!(batch.trigger, "deadline");
        assert_eq!(batch.jobs.len(), 1);
        assert!(
            before.elapsed() >= Duration::from_millis(10),
            "waited the window"
        );
    }

    #[test]
    fn incompatible_front_job_goes_solo_without_waiting() {
        let batcher = Batcher::new(&config(4));
        let queue = JobQueue::new(16);
        let faulty = JobSpec::new(vec![1]).fault_plan(FaultPlan::new());
        queue.push(queued(1, faulty)).ok().unwrap();
        let before = Instant::now();
        let batch = batcher.next_batch(&queue).unwrap();
        assert_eq!(batch.trigger, "solo");
        assert!(
            before.elapsed() < Duration::from_millis(10),
            "solo jobs pay no flush wait"
        );
    }

    #[test]
    fn incompatible_companion_is_a_boundary() {
        let batcher = Batcher::new(&config(4));
        let queue = JobQueue::new(16);
        queue.push(queued(1, JobSpec::new(vec![1]))).ok().unwrap();
        queue
            .push(queued(
                2,
                JobSpec::new(vec![2]).direction(SortDirection::Descending),
            ))
            .ok()
            .unwrap();
        let batch = batcher.next_batch(&queue).unwrap();
        assert_eq!(batch.trigger, "boundary");
        assert_eq!(batch.jobs.len(), 1);
        // The descending job is untouched and next in line.
        let next = batcher.next_batch(&queue).unwrap();
        assert_eq!(next.trigger, "solo");
        assert_eq!(next.jobs[0].id, JobId(2));
    }

    #[test]
    fn batch_max_one_is_always_solo() {
        let batcher = Batcher::new(&config(1));
        let queue = JobQueue::new(16);
        queue.push(queued(1, JobSpec::new(vec![1]))).ok().unwrap();
        queue.push(queued(2, JobSpec::new(vec![2]))).ok().unwrap();
        let batch = batcher.next_batch(&queue).unwrap();
        assert_eq!(batch.trigger, "solo");
        assert_eq!(batch.jobs.len(), 1);
    }

    #[test]
    fn out_of_range_keys_are_incompatible() {
        let batcher = Batcher::new(&config(1024));
        // 1024-way batching leaves 21 key bits: ±2^20.
        assert!(batcher.compatible(&JobSpec::new(vec![(1 << 20) - 1])));
        assert!(!batcher.compatible(&JobSpec::new(vec![1 << 20])));
        assert!(batcher.compatible(&JobSpec::new(vec![-(1 << 20)])));
    }
}
