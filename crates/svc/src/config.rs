//! Service configuration and its validation.

use std::fmt;
use std::net::SocketAddr;
use std::time::Duration;

use aoft_sort::Algorithm;

/// Configuration of a [`SortService`](crate::SortService).
///
/// Start from [`SvcConfig::new`] and override what the deployment needs;
/// [`SortService::start`](crate::SortService::start) validates the whole
/// configuration once, so a running service never re-checks it per job.
#[derive(Debug, Clone)]
pub struct SvcConfig {
    /// Cube dimension `d`: jobs run on up to `2^d` nodes.
    pub dim: u32,
    /// Admission bound: jobs queued beyond the workers. Submits past this
    /// depth are rejected with backpressure rather than buffered without
    /// bound.
    pub queue_depth: usize,
    /// Worker slots: jobs sorted concurrently, each in a private link
    /// namespace of the shared transport.
    pub workers: usize,
    /// Attempts per job (first run plus retries) before the job fails with
    /// [`JobError::Exhausted`](crate::JobError::Exhausted).
    pub max_attempts: usize,
    /// Smallest cube dimension a degraded retry may shrink to. Below this
    /// the job fails with
    /// [`JobError::CubeExhausted`](crate::JobError::CubeExhausted).
    pub min_dim: u32,
    /// Distinct failed jobs striking a node before it is quarantined
    /// service-wide (struck nodes are always avoided *within* the striking
    /// job regardless). `u32::MAX` disables quarantine entirely — even a
    /// Φ_C equivocation proof only feeds the per-job avoid set — for
    /// harnesses that rotate transient faults through every node.
    pub quarantine_after: u32,
    /// Initial inter-attempt backoff delay (doubles per retry).
    pub backoff_initial: Duration,
    /// Backoff cap.
    pub backoff_max: Duration,
    /// Per-receive timeout inside a run (assumption 4's absence detector).
    pub recv_timeout: Duration,
    /// The sorting algorithm jobs run.
    pub algorithm: Algorithm,
    /// Address to serve Prometheus metrics on (`None` disables the
    /// endpoint). Port 0 binds an ephemeral port, reported by
    /// [`SortService::metrics_addr`](crate::SortService::metrics_addr).
    pub metrics_addr: Option<SocketAddr>,
    /// Most jobs one cube attempt may coalesce into a single composite-key
    /// sort. `1` (the default) disables batching: every job takes exactly
    /// the unbatched path. Capped at 1024 — ten sequence bits still leave
    /// a ±2^20 key range.
    pub batch_max: usize,
    /// How long the first job of a forming batch may wait for company
    /// before the batch is flushed anyway (the deadline trigger). Ignored
    /// when `batch_max` is 1.
    pub batch_flush: Duration,
}

impl SvcConfig {
    /// A service on a `2^dim`-node cube with production-lean defaults:
    /// one worker, queue depth 64, 3 attempts per job, degraded mode down
    /// to `d = 1`, quarantine after 2 strikes, 10→160 ms backoff, 800 ms
    /// receive timeout, `S_FT`.
    pub fn new(dim: u32) -> Self {
        Self {
            dim,
            queue_depth: 64,
            workers: 1,
            max_attempts: 3,
            min_dim: 1,
            quarantine_after: 2,
            backoff_initial: Duration::from_millis(10),
            backoff_max: Duration::from_millis(160),
            recv_timeout: Duration::from_millis(800),
            algorithm: Algorithm::FaultTolerant,
            metrics_addr: None,
            batch_max: 1,
            batch_flush: Duration::from_millis(1),
        }
    }

    /// Sets the batching window: coalesce up to `max` compatible jobs per
    /// cube attempt (`1` disables batching).
    pub fn batch_max(mut self, max: usize) -> Self {
        self.batch_max = max;
        self
    }

    /// Sets how long a forming batch waits for more jobs before flushing.
    pub fn batch_flush(mut self, window: Duration) -> Self {
        self.batch_flush = window;
        self
    }

    /// Sets the admission bound.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the number of concurrent worker slots.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the per-job attempt budget.
    pub fn max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Sets the smallest degraded dimension.
    pub fn min_dim(mut self, dim: u32) -> Self {
        self.min_dim = dim;
        self
    }

    /// Sets the service-wide quarantine threshold.
    pub fn quarantine_after(mut self, strikes: u32) -> Self {
        self.quarantine_after = strikes;
        self
    }

    /// Sets the inter-attempt backoff schedule.
    pub fn backoff(mut self, initial: Duration, max: Duration) -> Self {
        self.backoff_initial = initial;
        self.backoff_max = max;
        self
    }

    /// Sets the in-run receive timeout.
    pub fn recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Sets the algorithm jobs run.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Serves Prometheus metrics on `addr` (port 0 for an ephemeral port).
    pub fn metrics_addr(mut self, addr: SocketAddr) -> Self {
        self.metrics_addr = Some(addr);
        self
    }

    pub(crate) fn validate(&self) -> Result<(), ConfigError> {
        let fail = |msg: String| Err(ConfigError(msg));
        if self.dim == 0 || self.dim > 16 {
            return fail(format!("dim {} outside 1..=16", self.dim));
        }
        if self.min_dim == 0 || self.min_dim > self.dim {
            return fail(format!(
                "min_dim {} outside 1..=dim ({})",
                self.min_dim, self.dim
            ));
        }
        if self.workers == 0 {
            return fail("at least one worker".into());
        }
        if self.queue_depth == 0 {
            return fail("queue depth of zero admits nothing".into());
        }
        if self.max_attempts == 0 {
            return fail("at least one attempt per job".into());
        }
        if self.quarantine_after == 0 {
            return fail("quarantine_after of zero would quarantine healthy nodes".into());
        }
        if self.batch_max == 0 || self.batch_max > 1024 {
            return fail(format!("batch_max {} outside 1..=1024", self.batch_max));
        }
        // Each worker slot owns a private link-tag namespace of `dim` tags;
        // tags are 8-bit on the wire.
        let tags_needed = self.workers as u64 * self.dim as u64;
        if tags_needed > 256 {
            return fail(format!(
                "{} workers × dim {} = {tags_needed} link tags exceeds the 256-tag space",
                self.workers, self.dim
            ));
        }
        Ok(())
    }
}

/// A [`SvcConfig`] the service refuses to start with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub(crate) String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid service configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(SvcConfig::new(3).validate().is_ok());
        assert!(SvcConfig::new(3).metrics_addr.is_none());
    }

    #[test]
    fn metrics_addr_is_recorded() {
        let addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let config = SvcConfig::new(3).metrics_addr(addr);
        assert_eq!(config.metrics_addr, Some(addr));
        assert!(config.validate().is_ok());
    }

    #[test]
    fn bad_shapes_are_rejected() {
        assert!(SvcConfig::new(0).validate().is_err());
        assert!(SvcConfig::new(17).validate().is_err());
        assert!(SvcConfig::new(3).min_dim(4).validate().is_err());
        assert!(SvcConfig::new(3).min_dim(0).validate().is_err());
        assert!(SvcConfig::new(3).workers(0).validate().is_err());
        assert!(SvcConfig::new(3).queue_depth(0).validate().is_err());
        assert!(SvcConfig::new(3).max_attempts(0).validate().is_err());
        assert!(SvcConfig::new(3).quarantine_after(0).validate().is_err());
        assert!(SvcConfig::new(8).workers(33).validate().is_err());
        assert!(SvcConfig::new(8).workers(32).validate().is_ok());
        assert!(SvcConfig::new(3).batch_max(0).validate().is_err());
        assert!(SvcConfig::new(3).batch_max(1025).validate().is_err());
        assert!(SvcConfig::new(3).batch_max(1024).validate().is_ok());
    }

    #[test]
    fn batching_defaults_off() {
        let config = SvcConfig::new(3);
        assert_eq!(config.batch_max, 1, "batching is opt-in");
        let batched = SvcConfig::new(3)
            .batch_max(16)
            .batch_flush(Duration::from_millis(2));
        assert_eq!(batched.batch_max, 16);
        assert_eq!(batched.batch_flush, Duration::from_millis(2));
        assert!(batched.validate().is_ok());
    }

    #[test]
    fn config_error_displays_reason() {
        let err = SvcConfig::new(0).validate().unwrap_err();
        assert!(err.to_string().contains("dim 0"));
    }
}
