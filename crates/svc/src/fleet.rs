//! The fleet router: N sort cubes behind one admission door.
//!
//! One [`SortService`] is one machine — a `2^d`-node cube whose quarantine
//! can only shrink it. A [`FleetRouter`] owns several such cubes (plus
//! optional standby spares) and routes a stream of [`JobSpec`]s across
//! them:
//!
//! * **routing** — round-robin over *healthy* active cubes; cubes the
//!   recovery layer has shrunk (non-empty quarantine) are deprioritized to
//!   the back of the order, and standby spares are promoted to active the
//!   moment a degraded cube drops the healthy-active count below target;
//! * **fleet backpressure** — each cube's bounded queue rejects with
//!   [`SubmitError::Backpressure`]; the router tries the next cube in
//!   routing order and only when *every* cube refuses does the caller see
//!   one aggregated fleet-wide backpressure signal;
//! * **failover** — [`FleetHandle::wait`] resubmits a job whose cube
//!   failed it loudly ([`JobError::Exhausted`], [`JobError::CubeExhausted`],
//!   [`JobError::Runtime`], [`JobError::Stopped`]) to a different cube, up
//!   to [`FleetConfig::max_reroutes`] times — the fleet-level analogue of
//!   the paper's degraded-mode retry, one level up: where a cube retries a
//!   job on its largest surviving subcube, the fleet retries it on a
//!   different cube entirely. Results stay verified end to end; a job is
//!   never answered with an unverified output, no matter how many hops.
//!
//! Observability: `aoft_fleet_cubes`, per-cube `aoft_fleet_jobs_routed_total`
//! and `aoft_fleet_cube_health`, `aoft_fleet_failovers_total`, and
//! `aoft_fleet_spares_promoted_total` in the process registry.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use aoft_net::Transport;
use aoft_sim::Packet;
use aoft_sort::Msg;

use crate::config::{ConfigError, SvcConfig};
use crate::job::{JobError, JobHandle, JobReport, JobSpec, SubmitError};
use crate::metrics::SvcMetrics;
use crate::service::SortService;

/// Configuration of a [`FleetRouter`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-cube service configuration (every cube runs the same shape).
    pub cube: SvcConfig,
    /// Active cubes — the routing target count the router tries to keep
    /// healthy by promoting spares.
    pub cubes: usize,
    /// Standby cubes held out of routing until an active cube degrades.
    pub spares: usize,
    /// Times one job may fail over to a different cube before its error is
    /// returned to the caller.
    pub max_reroutes: usize,
}

impl FleetConfig {
    /// A fleet of `cubes` active cubes of shape `cube`, no spares, up to 2
    /// reroutes per job.
    pub fn new(cube: SvcConfig, cubes: usize) -> Self {
        Self {
            cube,
            cubes,
            spares: 0,
            max_reroutes: 2,
        }
    }

    /// Adds standby cubes, promoted when active cubes degrade.
    pub fn spares(mut self, spares: usize) -> Self {
        self.spares = spares;
        self
    }

    /// Sets the per-job failover budget.
    pub fn max_reroutes(mut self, reroutes: usize) -> Self {
        self.max_reroutes = reroutes;
        self
    }
}

struct Cube<T>
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    service: SortService<T>,
    /// Held in reserve until promoted; spares sort behind every active cube
    /// in routing order.
    spare: AtomicBool,
    /// Router-local routed count — the process-global family below is
    /// shared by every fleet in the process, so snapshots must not read it.
    routed_local: AtomicU64,
    routed: Arc<aoft_obs::Counter>,
    health: Arc<aoft_obs::Gauge>,
}

impl<T> Cube<T>
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    /// A cube is degraded once its service has quarantined any node — its
    /// largest clean cube is smaller than configured.
    fn degraded(&self) -> bool {
        !self.service.quarantined().is_empty()
    }

    fn note_routed(&self) {
        self.routed_local.fetch_add(1, Ordering::Relaxed);
        self.routed.inc();
    }
}

/// A router over N [`SortService`] cubes sharing one admission door.
pub struct FleetRouter<T>
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    config: FleetConfig,
    cubes: Vec<Cube<T>>,
    /// Round-robin rotation of the routing order.
    rr: AtomicUsize,
    failovers: AtomicU64,
    promoted: AtomicU64,
}

impl<T> FleetRouter<T>
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    /// Starts `config.cubes + config.spares` services, one per transport
    /// the factory yields (`transport_for(i)` builds cube `i`'s medium —
    /// each cube is an independent physical machine).
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when the cube configuration is invalid, the fleet is
    /// empty, or a transport cannot be built.
    pub fn start<F>(config: FleetConfig, mut transport_for: F) -> Result<Self, ConfigError>
    where
        F: FnMut(usize) -> Result<T, aoft_net::NetError>,
    {
        if config.cubes == 0 {
            return Err(ConfigError("a fleet needs at least one active cube".into()));
        }
        let total = config.cubes + config.spares;
        let reg = aoft_obs::global();
        let mut cubes = Vec::with_capacity(total);
        for i in 0..total {
            let transport = transport_for(i)
                .map_err(|e| ConfigError(format!("fleet cube {i} transport: {e}")))?;
            let service = SortService::start(config.cube.clone(), transport)?;
            let label = i.to_string();
            let health = reg.fleet_cube_health.with_label(&label);
            health.set(1);
            cubes.push(Cube {
                service,
                spare: AtomicBool::new(i >= config.cubes),
                routed_local: AtomicU64::new(0),
                routed: reg.fleet_jobs_routed.with_label(&label),
                health,
            });
        }
        reg.fleet_cubes.set(total as i64);
        Ok(Self {
            config,
            cubes,
            rr: AtomicUsize::new(0),
            failovers: AtomicU64::new(0),
            promoted: AtomicU64::new(0),
        })
    }

    /// Cubes in the fleet (actives + spares).
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// The running configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Routes one job to the best cube available and returns its fleet
    /// handle.
    ///
    /// # Errors
    ///
    /// * [`SubmitError::Backpressure`] — every cube's queue is full; the
    ///   `depth` reported is the *fleet-wide* admission bound.
    /// * [`SubmitError::Invalid`] — the spec can never run on this fleet's
    ///   cube shape (identical on every cube, so no cube is tried twice).
    /// * [`SubmitError::Stopped`] — no cube accepted the job.
    pub fn submit(&self, spec: JobSpec) -> Result<FleetHandle<'_, T>, SubmitError> {
        self.refresh_health();
        self.submit_excluding(spec, None)
    }

    /// Routes a whole batch, striping *contiguous chunks* across the
    /// routing order. When the cube config enables batching
    /// ([`SvcConfig::batch_max`](crate::SvcConfig) > 1), chunks of up to
    /// `batch_max` consecutive specs land on the same cube so its
    /// micro-batcher can coalesce them into one composite-key attempt;
    /// with batching off the chunk size is 1 and this is plain round-robin.
    /// Each entry resolves independently: a backpressured tail does not
    /// undo an admitted head.
    pub fn submit_batch(
        &self,
        specs: Vec<JobSpec>,
    ) -> Vec<Result<FleetHandle<'_, T>, SubmitError>> {
        self.refresh_health();
        let chunk = self.config.cube.batch_max.max(1);
        let mut results = Vec::with_capacity(specs.len());
        let mut pinned_cube: Option<usize> = None;
        for (i, spec) in specs.into_iter().enumerate() {
            if i % chunk == 0 {
                pinned_cube = None;
            }
            let result = match pinned_cube {
                // Keep the chunk together: same cube as its first member.
                // A pinned submit that is refused (backpressure) falls
                // through to normal routing rather than failing the spec.
                Some(cube) => self
                    .submit_to(cube, spec.clone())
                    .or_else(|_| self.submit_excluding(spec, None)),
                None => {
                    let result = self.submit_excluding(spec, None);
                    if let Ok(handle) = &result {
                        pinned_cube = Some(handle.cube);
                    }
                    result
                }
            };
            results.push(result);
        }
        results
    }

    /// Pins a job to cube `index`, bypassing routing — an operational and
    /// test hook (drain a cube, reproduce a cube-local failure). Failover
    /// on [`FleetHandle::wait`] still applies.
    ///
    /// # Errors
    ///
    /// The pinned cube's own [`SubmitError`]; [`SubmitError::Stopped`] if
    /// `index` is out of range.
    pub fn submit_to(
        &self,
        index: usize,
        spec: JobSpec,
    ) -> Result<FleetHandle<'_, T>, SubmitError> {
        let cube = self.cubes.get(index).ok_or(SubmitError::Stopped)?;
        let handle = cube.service.submit(spec.clone())?;
        cube.note_routed();
        Ok(FleetHandle {
            router: self,
            spec,
            handle,
            cube: index,
            reroutes: 0,
        })
    }

    /// A point-in-time fleet snapshot (refreshes health gauges).
    pub fn metrics(&self) -> FleetMetrics {
        self.refresh_health();
        let degraded = self
            .cubes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.degraded())
            .map(|(i, _)| i)
            .collect();
        let spares = self
            .cubes
            .iter()
            .filter(|c| c.spare.load(Ordering::Acquire))
            .count();
        FleetMetrics {
            cubes: self.cubes.len(),
            active: self.cubes.len() - spares,
            spares,
            degraded,
            jobs_routed: self
                .cubes
                .iter()
                .map(|c| c.routed_local.load(Ordering::Relaxed))
                .collect(),
            failovers: self.failovers.load(Ordering::Relaxed),
            spares_promoted: self.promoted.load(Ordering::Relaxed),
            per_cube: self.cubes.iter().map(|c| c.service.metrics()).collect(),
        }
    }

    /// Stops every cube: queued-but-unstarted jobs resolve with
    /// [`JobError::Stopped`], in-flight jobs run to completion.
    pub fn shutdown(self) {
        for cube in self.cubes {
            cube.service.shutdown();
        }
        aoft_obs::global().fleet_cubes.set(0);
    }

    /// Refreshes health gauges and keeps the healthy-active count at
    /// target by promoting healthy spares when actives degrade.
    fn refresh_health(&self) {
        let mut healthy_actives = 0usize;
        for cube in &self.cubes {
            let degraded = cube.degraded();
            cube.health.set(i64::from(!degraded));
            if !degraded && !cube.spare.load(Ordering::Acquire) {
                healthy_actives += 1;
            }
        }
        if healthy_actives >= self.config.cubes {
            return;
        }
        for (i, cube) in self.cubes.iter().enumerate() {
            if healthy_actives >= self.config.cubes {
                break;
            }
            if cube.degraded() || !cube.spare.swap(false, Ordering::AcqRel) {
                continue;
            }
            healthy_actives += 1;
            self.promoted.fetch_add(1, Ordering::Relaxed);
            aoft_obs::global().fleet_spares_promoted.inc();
            aoft_obs::emit(
                aoft_obs::Event::new("spare_promoted")
                    .detail(format!("cube {i} promoted to active")),
            );
        }
    }

    /// The cube indices to try for one job, best first: healthy actives
    /// (rotated round-robin), then healthy spares, then degraded cubes
    /// last — a shrunken cube still serves, but only once nothing whole has
    /// capacity.
    fn routing_order(&self, exclude: Option<usize>) -> Vec<usize> {
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        let mut healthy_active = Vec::new();
        let mut healthy_spare = Vec::new();
        let mut degraded = Vec::new();
        for (i, cube) in self.cubes.iter().enumerate() {
            if Some(i) == exclude {
                continue;
            }
            if cube.degraded() {
                degraded.push(i);
            } else if cube.spare.load(Ordering::Acquire) {
                healthy_spare.push(i);
            } else {
                healthy_active.push(i);
            }
        }
        // Rotate within the healthy-active class, so the round-robin is
        // fair over the cubes actually in rotation.
        if !healthy_active.is_empty() {
            let rotation = start % healthy_active.len();
            healthy_active.rotate_left(rotation);
        }
        healthy_active.extend(healthy_spare);
        healthy_active.extend(degraded);
        healthy_active
    }

    fn submit_excluding(
        &self,
        spec: JobSpec,
        exclude: Option<usize>,
    ) -> Result<FleetHandle<'_, T>, SubmitError> {
        let order = self.routing_order(exclude);
        if order.is_empty() {
            return Err(SubmitError::Stopped);
        }
        for index in order {
            let cube = &self.cubes[index];
            match cube.service.submit(spec.clone()) {
                Ok(handle) => {
                    if cube.spare.swap(false, Ordering::AcqRel) {
                        // Routing reached a spare: everything ahead of it
                        // was full or degraded, so it joins the actives.
                        self.promoted.fetch_add(1, Ordering::Relaxed);
                        aoft_obs::global().fleet_spares_promoted.inc();
                    }
                    cube.note_routed();
                    return Ok(FleetHandle {
                        router: self,
                        spec,
                        handle,
                        cube: index,
                        reroutes: 0,
                    });
                }
                Err(SubmitError::Backpressure { .. }) | Err(SubmitError::Stopped) => continue,
                // Shape mismatch is identical on every cube; fail fast.
                Err(err @ SubmitError::Invalid(_)) => return Err(err),
            }
        }
        // Every cube refused: one aggregated fleet backpressure signal.
        Err(SubmitError::Backpressure {
            depth: self.cubes.len() * self.config.cube.queue_depth,
        })
    }
}

impl<T> std::fmt::Debug for FleetRouter<T>
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetRouter")
            .field("cubes", &self.cubes.len())
            .field("config", &self.config)
            .finish()
    }
}

/// A routed job's claim ticket: [`JobHandle`] plus the fleet's failover
/// policy.
pub struct FleetHandle<'a, T>
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    router: &'a FleetRouter<T>,
    spec: JobSpec,
    handle: JobHandle,
    cube: usize,
    reroutes: usize,
}

impl<T> FleetHandle<'_, T>
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    /// The cube currently running the job.
    pub fn cube(&self) -> usize {
        self.cube
    }

    /// Blocks until the job completes somewhere in the fleet, failing over
    /// to another cube (up to [`FleetConfig::max_reroutes`] times) when a
    /// cube fails the job loudly.
    ///
    /// # Errors
    ///
    /// The final [`JobError`] once the failover budget is spent or the
    /// error is not retryable ([`JobError::Invalid`]).
    pub fn wait(mut self) -> Result<FleetReport, JobError> {
        loop {
            match self.handle.wait() {
                Ok(report) => {
                    return Ok(FleetReport {
                        cube: self.cube,
                        reroutes: self.reroutes,
                        report,
                    })
                }
                Err(err) => {
                    if !failover_worthy(&err) || self.reroutes >= self.router.config.max_reroutes {
                        return Err(err);
                    }
                    let failed_cube = self.cube;
                    self.router.refresh_health();
                    match self
                        .router
                        .submit_excluding(self.spec.clone(), Some(failed_cube))
                    {
                        Ok(rerouted) => {
                            self.router.failovers.fetch_add(1, Ordering::Relaxed);
                            aoft_obs::global().fleet_failovers.inc();
                            aoft_obs::emit(aoft_obs::Event::new("fleet_failover").detail(format!(
                                "cube {failed_cube} failed ({err}); rerouted to cube {}",
                                rerouted.cube
                            )));
                            self.cube = rerouted.cube;
                            self.handle = rerouted.handle;
                            self.reroutes += 1;
                        }
                        // Nowhere left to run it: surface the cube's error.
                        Err(_) => return Err(err),
                    }
                }
            }
        }
    }
}

/// Which job failures warrant trying a different cube: everything except a
/// shape mismatch, which would fail identically fleet-wide.
fn failover_worthy(err: &JobError) -> bool {
    !matches!(err, JobError::Invalid(_))
}

/// A completed fleet job: the cube's verified [`JobReport`] plus where and
/// how it ran.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The cube that produced the verified result.
    pub cube: usize,
    /// Failovers this job consumed (0 = first cube answered).
    pub reroutes: usize,
    /// The verified per-job report.
    pub report: JobReport,
}

/// A point-in-time view of the fleet.
#[derive(Debug, Clone)]
pub struct FleetMetrics {
    /// Cubes in the fleet, spares included.
    pub cubes: usize,
    /// Cubes currently in the routing rotation.
    pub active: usize,
    /// Cubes still held in reserve.
    pub spares: usize,
    /// Indices of quarantine-shrunken cubes (deprioritized in routing).
    pub degraded: Vec<usize>,
    /// Jobs routed to each cube, by index.
    pub jobs_routed: Vec<u64>,
    /// Jobs that failed over to another cube at least once.
    pub failovers: u64,
    /// Spares promoted into the active rotation.
    pub spares_promoted: u64,
    /// Each cube's own service metrics, by index.
    pub per_cube: Vec<SvcMetrics>,
}
