//! Jobs: what clients submit, what they get back, and how either side can
//! fail.

use std::fmt;
use std::time::Duration;

use aoft_faults::FaultPlan;
use aoft_sim::{ErrorReport, NodeMetrics, Trace};
use aoft_sort::{Key, SortDirection};
use crossbeam_channel::{Receiver, RecvTimeoutError};

/// Service-assigned job identity, unique for the service's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// One sort request.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The keys to sort.
    pub keys: Vec<Key>,
    /// Requested output order.
    pub direction: SortDirection,
    /// Model-level faults injected into this job's *first* attempt — the
    /// service-side hook for fault campaigns and soak tests; `None` runs
    /// clean. Retries run without it, modeling a transient fault: the
    /// paper's recovery loop re-runs on a machine the fault has left (a
    /// deterministic model fault would otherwise defeat every retry).
    /// Persistent faults belong to the transport layer
    /// (`aoft_faults::FaultyTransport`), which the service's link cache
    /// keeps alive across jobs.
    pub fault_plan: Option<FaultPlan>,
    /// Capture the simulator's event trace of the successful attempt into
    /// [`JobReport::trace`] — the raw material `aoft-replay` records
    /// alongside a soak run. Off by default (tracing costs memory
    /// proportional to message count).
    pub capture_trace: bool,
}

impl JobSpec {
    /// An ascending sort of `keys`.
    pub fn new(keys: Vec<Key>) -> Self {
        Self {
            keys,
            direction: SortDirection::Ascending,
            fault_plan: None,
            capture_trace: false,
        }
    }

    /// Overrides the output order.
    pub fn direction(mut self, direction: SortDirection) -> Self {
        self.direction = direction;
        self
    }

    /// Injects model-level faults into the job's first attempt.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Captures the successful attempt's simulator trace in the report.
    pub fn capture_trace(mut self, enabled: bool) -> Self {
        self.capture_trace = enabled;
        self
    }
}

/// The result of a completed job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job this report answers.
    pub id: JobId,
    /// The fully sorted keys.
    pub output: Vec<Key>,
    /// Attempts consumed, including the successful one.
    pub attempts: usize,
    /// Cube dimension the *successful* attempt ran on (smaller than the
    /// service's dimension when the job completed in degraded mode).
    pub dim: u32,
    /// Fail-stop reports of each failed attempt, in order (empty when the
    /// first attempt succeeded).
    pub detections: Vec<Vec<ErrorReport>>,
    /// Wall-clock time from submission to completion (queue wait included).
    pub latency: Duration,
    /// Merged per-node simulator counters of the successful attempt.
    pub metrics: NodeMetrics,
    /// Total effort billed to this job, in ticks: node-time (send + idle +
    /// compute) summed over *every* attempt, including fail-stopped ones —
    /// the Dwork–Halpern–Waarts-style work measure, as opposed to
    /// `latency` (the client-visible makespan).
    pub effort: u64,
    /// Event trace of the successful attempt (empty unless the spec set
    /// [`JobSpec::capture_trace`]).
    pub trace: Trace,
}

impl JobReport {
    /// `true` if the job needed recovery (at least one attempt fail-stopped
    /// before the successful one).
    pub fn recovered(&self) -> bool {
        !self.detections.is_empty()
    }
}

/// Why a job submission was refused at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — back off and resubmit.
    Backpressure {
        /// The configured admission bound that was hit.
        depth: usize,
    },
    /// The request can never run on this service (shape mismatch).
    Invalid(String),
    /// The service has shut down.
    Stopped,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Backpressure { depth } => {
                write!(f, "queue full ({depth} jobs): backpressure")
            }
            SubmitError::Invalid(msg) => write!(f, "unservable job: {msg}"),
            SubmitError::Stopped => write!(f, "service stopped"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an admitted job ultimately failed.
///
/// Every variant is a *loud* failure: per the paper's fail-stop discipline
/// the service never delivers an unverified (possibly wrong) result.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// Every attempt fail-stopped; the final attempt's reports are
    /// attached.
    Exhausted {
        /// Attempts consumed.
        attempts: usize,
        /// Fail-stop reports of every attempt, in order.
        detections: Vec<Vec<ErrorReport>>,
    },
    /// Quarantine shrank the healthy cube below the configured minimum
    /// dimension — no machine is left to retry on.
    CubeExhausted {
        /// Healthy (non-quarantined, non-suspect) nodes remaining.
        healthy: usize,
        /// The smallest dimension the service may degrade to.
        min_dim: u32,
    },
    /// The job's shape is unusable (caught post-admission, e.g. after a
    /// degraded cube changed the divisibility requirement).
    Invalid(String),
    /// The worker's run infrastructure failed (e.g. a link could not be
    /// established); the job did not produce a result.
    Runtime(String),
    /// The service shut down before the job ran to completion.
    Stopped,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Exhausted {
                attempts,
                detections,
            } => write!(
                f,
                "all {attempts} attempt(s) fail-stopped ({} report set(s))",
                detections.len()
            ),
            JobError::CubeExhausted { healthy, min_dim } => write!(
                f,
                "only {healthy} healthy node(s) left, below the 2^{min_dim} minimum cube"
            ),
            JobError::Invalid(msg) => write!(f, "invalid job: {msg}"),
            JobError::Runtime(msg) => write!(f, "run infrastructure failed: {msg}"),
            JobError::Stopped => write!(f, "service stopped before completion"),
        }
    }
}

impl std::error::Error for JobError {}

/// A submitted job's claim ticket.
///
/// The service completes jobs asynchronously; the handle is the reliable
/// reply channel (the service's analogue of the paper's host link).
#[derive(Debug)]
pub struct JobHandle {
    pub(crate) id: JobId,
    pub(crate) reply: Receiver<Result<JobReport, JobError>>,
}

impl JobHandle {
    /// The service-assigned job id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Blocks until the job completes or fails.
    ///
    /// # Errors
    ///
    /// The job's [`JobError`]; a service torn down mid-job yields
    /// [`JobError::Stopped`].
    pub fn wait(self) -> Result<JobReport, JobError> {
        match self.reply.recv() {
            Ok(result) => result,
            Err(_) => Err(JobError::Stopped),
        }
    }

    /// Like [`wait`](JobHandle::wait), bounded by `timeout`. `None` means
    /// the job is still in flight (the handle remains usable).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<JobReport, JobError>> {
        match self.reply.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Err(JobError::Stopped)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;

    #[test]
    fn handle_relays_the_result() {
        let (tx, rx) = unbounded();
        let handle = JobHandle {
            id: JobId(7),
            reply: rx,
        };
        assert_eq!(handle.id(), JobId(7));
        tx.send(Err(JobError::Stopped)).unwrap();
        assert!(matches!(handle.wait(), Err(JobError::Stopped)));
    }

    #[test]
    fn dropped_service_reads_as_stopped() {
        let (tx, rx) = unbounded::<Result<JobReport, JobError>>();
        drop(tx);
        let handle = JobHandle {
            id: JobId(1),
            reply: rx,
        };
        assert!(matches!(handle.wait(), Err(JobError::Stopped)));
    }

    #[test]
    fn wait_timeout_distinguishes_in_flight() {
        let (tx, rx) = unbounded();
        let handle = JobHandle {
            id: JobId(2),
            reply: rx,
        };
        assert!(handle.wait_timeout(Duration::from_millis(10)).is_none());
        tx.send(Err(JobError::Stopped)).unwrap();
        assert!(handle.wait_timeout(Duration::from_millis(10)).is_some());
    }

    #[test]
    fn errors_display() {
        assert!(SubmitError::Backpressure { depth: 4 }
            .to_string()
            .contains("backpressure"));
        assert!(JobError::CubeExhausted {
            healthy: 1,
            min_dim: 1
        }
        .to_string()
        .contains("healthy"));
        assert!(JobId(3).to_string().contains('3'));
    }
}
