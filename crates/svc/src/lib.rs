//! # aoft-svc — a resident sorting service over the AOFT cube
//!
//! The paper's machinery — `S_FT`'s constraint predicates, fail-stop
//! detection, diagnosis — is built for *one* sort. This crate keeps that
//! machinery resident and serves a **stream** of sorts, closing the loop the
//! paper leaves to "the system": reports are delivered, faults localized,
//! and appropriate action taken, job after job.
//!
//! ```text
//!  clients ──submit──▶ [ bounded queue ] ──▶ workers ──▶ cube (2^d nodes)
//!             ▲              │                  │            │
//!       backpressure     admission          scheduler    fail-stop
//!                                               │            │
//!                                               ◀─ diagnose ──┘
//!                                        quarantine + degraded retry
//! ```
//!
//! * **Admission control** — [`SortService::submit`] bounds the queue;
//!   beyond [`SvcConfig::queue_depth`] callers get
//!   [`SubmitError::Backpressure`] instead of unbounded buffering.
//! * **Multiplexing** — worker slots own disjoint link-tag namespaces and
//!   every attempt runs under a unique run id, so concurrent and retried
//!   jobs share one physical transport without crosstalk.
//! * **Recovery** — each fail-stop is diagnosed; implicated nodes are
//!   avoided by the striking job, repeat offenders quarantined
//!   service-wide, and retries run degraded on the surviving subcube.
//! * **Metrics** — [`SortService::metrics`] reports job counters, retry
//!   totals, latency percentiles and merged simulator counters.
//!
//! # Quickstart
//!
//! ```
//! use aoft_net::InProc;
//! use aoft_svc::{JobSpec, SortService, SvcConfig};
//!
//! let service = SortService::start(SvcConfig::new(3), InProc::new())?;
//! let handle = service.submit(JobSpec::new(vec![5, 3, 8, 1, 7, 2, 6, 4]))?;
//! let report = handle.wait().expect("fail-stop, never silently wrong");
//! assert_eq!(report.output, vec![1, 2, 3, 4, 5, 6, 7, 8]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod batch;
mod config;
mod fleet;
mod job;
mod metrics;
mod queue;
mod recovery;
mod remote;
mod service;

pub use config::{ConfigError, SvcConfig};
pub use fleet::{FleetConfig, FleetHandle, FleetMetrics, FleetReport, FleetRouter};
pub use job::{JobError, JobHandle, JobId, JobReport, JobSpec, SubmitError};
pub use metrics::SvcMetrics;
pub use remote::{CubeHost, RemoteFleet, RemoteMsg, RemoteReport, PARENT_LABEL};
pub use service::SortService;
