//! Service-wide metrics: job counters, latency percentiles, and merged
//! simulator counters.

use std::time::Duration;

use aoft_sim::NodeMetrics;
use parking_lot::Mutex;

/// Accumulates across the service's lifetime; `snapshot` freezes a
/// consistent view.
#[derive(Default)]
pub(crate) struct MetricsSink {
    state: Mutex<MetricsState>,
}

#[derive(Default)]
struct MetricsState {
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    retries: u64,
    recovered_jobs: u64,
    latencies: Vec<Duration>,
    sim: NodeMetrics,
}

impl MetricsSink {
    pub fn job_submitted(&self) {
        self.state.lock().submitted += 1;
    }

    pub fn job_rejected(&self) {
        self.state.lock().rejected += 1;
    }

    pub fn job_completed(&self, latency: Duration, retries: u64, sim: &NodeMetrics) {
        let mut state = self.state.lock();
        state.completed += 1;
        state.retries += retries;
        if retries > 0 {
            state.recovered_jobs += 1;
        }
        state.latencies.push(latency);
        state.sim.merge(sim);
    }

    pub fn job_failed(&self, retries: u64) {
        let mut state = self.state.lock();
        state.failed += 1;
        state.retries += retries;
    }

    pub fn snapshot(&self, queue_depth: usize, quarantined: Vec<u32>) -> SvcMetrics {
        let state = self.state.lock();
        let mut sorted = state.latencies.clone();
        sorted.sort_unstable();
        SvcMetrics {
            jobs_submitted: state.submitted,
            jobs_rejected: state.rejected,
            jobs_completed: state.completed,
            jobs_failed: state.failed,
            retries: state.retries,
            recovered_jobs: state.recovered_jobs,
            queue_depth,
            quarantined,
            latency_p50: percentile(&sorted, 50),
            latency_p90: percentile(&sorted, 90),
            latency_p99: percentile(&sorted, 99),
            sim: state.sim,
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[Duration], pct: u32) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (sorted.len() as u64 * pct as u64).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

/// A point-in-time view of the service's health and throughput.
#[derive(Debug, Clone)]
pub struct SvcMetrics {
    /// Jobs admitted past the queue bound.
    pub jobs_submitted: u64,
    /// Jobs refused with backpressure or as unservable.
    pub jobs_rejected: u64,
    /// Jobs answered with a verified sorted result.
    pub jobs_completed: u64,
    /// Jobs that failed loudly (attempt budget or cube exhausted).
    pub jobs_failed: u64,
    /// Extra attempts consumed beyond each job's first (recovery work).
    pub retries: u64,
    /// Completed jobs that needed at least one retry.
    pub recovered_jobs: u64,
    /// Jobs waiting in the queue at snapshot time.
    pub queue_depth: usize,
    /// Physical node labels currently quarantined service-wide.
    pub quarantined: Vec<u32>,
    /// Median submit→completion latency over completed jobs.
    pub latency_p50: Duration,
    /// 90th-percentile latency.
    pub latency_p90: Duration,
    /// 99th-percentile latency.
    pub latency_p99: Duration,
    /// Simulator counters merged over every successful attempt.
    pub sim: NodeMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let ms = |n: u64| Duration::from_millis(n);
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&sorted, 50), ms(50));
        assert_eq!(percentile(&sorted, 99), ms(99));
        assert_eq!(percentile(&[ms(7)], 50), ms(7));
        assert_eq!(percentile(&[], 99), Duration::ZERO);
    }

    #[test]
    fn counters_roll_up() {
        let sink = MetricsSink::default();
        sink.job_submitted();
        sink.job_submitted();
        sink.job_rejected();
        let sim = NodeMetrics {
            msgs_sent: 3,
            ..NodeMetrics::default()
        };
        sink.job_completed(Duration::from_millis(5), 2, &sim);
        sink.job_failed(1);
        let snap = sink.snapshot(4, vec![5]);
        assert_eq!(snap.jobs_submitted, 2);
        assert_eq!(snap.jobs_rejected, 1);
        assert_eq!(snap.jobs_completed, 1);
        assert_eq!(snap.jobs_failed, 1);
        assert_eq!(snap.retries, 3);
        assert_eq!(snap.recovered_jobs, 1);
        assert_eq!(snap.queue_depth, 4);
        assert_eq!(snap.quarantined, vec![5]);
        assert_eq!(snap.latency_p50, Duration::from_millis(5));
        assert_eq!(snap.sim.msgs_sent, 3);
    }
}
