//! Service-wide metrics: job counters, latency percentiles, and merged
//! simulator counters.
//!
//! The sink is the single chokepoint for job-lifecycle accounting: every
//! update lands both in the service's own state (for
//! [`SvcMetrics`] snapshots) and in the process-wide
//! [`aoft_obs`] registry (for the `/metrics` endpoint). Latencies go into a
//! fixed-bucket [`Histogram`] — bounded memory no matter how long the
//! resident service lives, unlike the unbounded `Vec<Duration>` it
//! replaces.

use std::time::Duration;

use aoft_obs::Histogram;
use aoft_sim::NodeMetrics;
use parking_lot::Mutex;

/// Accumulates across the service's lifetime; `snapshot` freezes a
/// consistent view.
#[derive(Default)]
pub(crate) struct MetricsSink {
    state: Mutex<MetricsState>,
    latency: Histogram,
}

#[derive(Default)]
struct MetricsState {
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    retries: u64,
    recovered_jobs: u64,
    effort: u64,
    batches_flushed: u64,
    jobs_coalesced: u64,
    sim: NodeMetrics,
}

impl MetricsSink {
    pub fn job_submitted(&self) {
        self.state.lock().submitted += 1;
        aoft_obs::global().jobs_submitted.inc();
    }

    pub fn job_rejected(&self) {
        self.state.lock().rejected += 1;
        aoft_obs::global().jobs_rejected.inc();
    }

    pub fn job_completed(&self, latency: Duration, retries: u64, effort: u64, sim: &NodeMetrics) {
        {
            let mut state = self.state.lock();
            state.completed += 1;
            state.retries += retries;
            if retries > 0 {
                state.recovered_jobs += 1;
            }
            state.effort += effort;
            state.sim.merge(sim);
        }
        self.latency.record(latency);
        let reg = aoft_obs::global();
        reg.jobs_completed.inc();
        reg.job_retries.add(retries);
        if retries > 0 {
            reg.jobs_recovered.inc();
        }
        reg.job_effort.add(effort);
        reg.job_latency.record(latency);
    }

    /// Records a batch leaving the admission door: `jobs` riders flushed by
    /// `trigger` (`solo`, `size`, `deadline`, `boundary`). Jobs only count
    /// as coalesced when they actually shared the attempt with another job.
    pub fn batch_flushed(&self, jobs: usize, trigger: &'static str) {
        let coalesced = if jobs > 1 { jobs as u64 } else { 0 };
        {
            let mut state = self.state.lock();
            state.batches_flushed += 1;
            state.jobs_coalesced += coalesced;
        }
        let reg = aoft_obs::global();
        reg.batch_occupancy.record_count(jobs as u64);
        reg.batch_flushes.add(trigger, 1);
        reg.batch_jobs_coalesced.add(coalesced);
    }

    pub fn job_failed(&self, retries: u64, effort: u64) {
        {
            let mut state = self.state.lock();
            state.failed += 1;
            state.retries += retries;
            state.effort += effort;
        }
        let reg = aoft_obs::global();
        reg.jobs_failed.inc();
        reg.job_retries.add(retries);
        reg.job_effort.add(effort);
    }

    pub fn snapshot(&self, queue_depth: usize, quarantined: Vec<u32>) -> SvcMetrics {
        let state = self.state.lock();
        SvcMetrics {
            jobs_submitted: state.submitted,
            jobs_rejected: state.rejected,
            jobs_completed: state.completed,
            jobs_failed: state.failed,
            retries: state.retries,
            recovered_jobs: state.recovered_jobs,
            effort: state.effort,
            batches_flushed: state.batches_flushed,
            jobs_coalesced: state.jobs_coalesced,
            queue_depth,
            quarantined,
            latency_p50: self.latency.percentile(50),
            latency_p90: self.latency.percentile(90),
            latency_p99: self.latency.percentile(99),
            sim: state.sim,
        }
    }
}

/// A point-in-time view of the service's health and throughput.
#[derive(Debug, Clone)]
pub struct SvcMetrics {
    /// Jobs admitted past the queue bound.
    pub jobs_submitted: u64,
    /// Jobs refused with backpressure or as unservable.
    pub jobs_rejected: u64,
    /// Jobs answered with a verified sorted result.
    pub jobs_completed: u64,
    /// Jobs that failed loudly (attempt budget or cube exhausted).
    pub jobs_failed: u64,
    /// Extra attempts consumed beyond each job's first (recovery work).
    pub retries: u64,
    /// Completed jobs that needed at least one retry.
    pub recovered_jobs: u64,
    /// Total effort billed across all finished jobs, in ticks: node-time
    /// over every attempt, fail-stopped ones included (retried work is
    /// billed, not hidden).
    pub effort: u64,
    /// Batches flushed from the admission door (a solo run counts as a
    /// batch of one).
    pub batches_flushed: u64,
    /// Jobs that shared a cube attempt with at least one other job.
    pub jobs_coalesced: u64,
    /// Jobs waiting in the queue at snapshot time.
    pub queue_depth: usize,
    /// Physical node labels currently quarantined service-wide.
    pub quarantined: Vec<u32>,
    /// Median submit→completion latency over completed jobs.
    pub latency_p50: Duration,
    /// 90th-percentile latency.
    pub latency_p90: Duration,
    /// 99th-percentile latency.
    pub latency_p99: Duration,
    /// Simulator counters merged over every successful attempt.
    pub sim: NodeMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_identical_latencies_stay_exact() {
        // The histogram's bucket-mean percentile is exact whenever a bucket
        // holds one distinct value — the property the service's p50/p90/p99
        // output relies on for small sample counts.
        let sink = MetricsSink::default();
        let ms = |n: u64| Duration::from_millis(n);
        for _ in 0..3 {
            sink.job_completed(ms(7), 0, 0, &NodeMetrics::default());
        }
        let snap = sink.snapshot(0, vec![]);
        assert_eq!(snap.latency_p50, ms(7));
        assert_eq!(snap.latency_p90, ms(7));
        assert_eq!(snap.latency_p99, ms(7));
    }

    #[test]
    fn spread_latencies_order_the_percentiles() {
        let sink = MetricsSink::default();
        let ms = |n: u64| Duration::from_millis(n);
        for n in 1..=100 {
            sink.job_completed(ms(n), 0, 0, &NodeMetrics::default());
        }
        let snap = sink.snapshot(0, vec![]);
        // Bucketed percentiles: within the nearest-rank sample's bucket.
        assert!(snap.latency_p50 >= ms(33) && snap.latency_p50 < ms(66));
        assert!(snap.latency_p99 >= ms(66) && snap.latency_p99 <= ms(100));
        assert!(snap.latency_p99 >= snap.latency_p90);
        assert!(snap.latency_p90 >= snap.latency_p50);
    }

    #[test]
    fn counters_roll_up() {
        let sink = MetricsSink::default();
        sink.job_submitted();
        sink.job_submitted();
        sink.job_rejected();
        let sim = NodeMetrics {
            msgs_sent: 3,
            ..NodeMetrics::default()
        };
        sink.job_completed(Duration::from_millis(5), 2, 40, &sim);
        sink.job_failed(1, 15);
        sink.batch_flushed(1, "solo");
        sink.batch_flushed(3, "size");
        let snap = sink.snapshot(4, vec![5]);
        assert_eq!(snap.jobs_submitted, 2);
        assert_eq!(snap.jobs_rejected, 1);
        assert_eq!(snap.jobs_completed, 1);
        assert_eq!(snap.jobs_failed, 1);
        assert_eq!(snap.retries, 3);
        assert_eq!(snap.recovered_jobs, 1);
        assert_eq!(snap.effort, 55, "completed and failed effort both bill");
        assert_eq!(snap.batches_flushed, 2);
        assert_eq!(snap.jobs_coalesced, 3, "solo runs never count as coalesced");
        assert_eq!(snap.queue_depth, 4);
        assert_eq!(snap.quarantined, vec![5]);
        assert_eq!(snap.latency_p50, Duration::from_millis(5));
        assert_eq!(snap.sim.msgs_sent, 3);
    }
}
