//! The bounded job queue behind admission control.

use std::collections::VecDeque;
use std::time::Instant;

use crossbeam_channel::Sender;
use parking_lot::{Condvar, Mutex};

use crate::job::{JobError, JobId, JobReport, JobSpec};

/// A job admitted into the queue, with everything a worker needs to run and
/// answer it.
pub(crate) struct QueuedJob {
    pub id: JobId,
    pub spec: JobSpec,
    pub submitted_at: Instant,
    pub reply: Sender<Result<JobReport, JobError>>,
}

struct QueueState {
    jobs: VecDeque<QueuedJob>,
    stopped: bool,
}

/// Bounded MPMC queue: submitters never block (full → rejected at the
/// admission layer above), workers block until a job or shutdown arrives.
pub(crate) struct JobQueue {
    depth: usize,
    state: Mutex<QueueState>,
    available: Condvar,
}

impl JobQueue {
    pub fn new(depth: usize) -> Self {
        Self {
            depth,
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                stopped: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Admits `job`, or hands it back when the queue is at depth or the
    /// service has stopped (the caller turns either into the right
    /// [`SubmitError`](crate::SubmitError)).
    pub fn push(&self, job: QueuedJob) -> Result<(), PushRefused> {
        let mut state = self.state.lock();
        if state.stopped {
            return Err(PushRefused::Stopped);
        }
        if state.jobs.len() >= self.depth {
            return Err(PushRefused::Full);
        }
        state.jobs.push_back(job);
        aoft_obs::global().queue_depth.set(state.jobs.len() as i64);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a job is available; `None` once the queue is stopped
    /// *and* drained.
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut state = self.state.lock();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                aoft_obs::global().queue_depth.set(state.jobs.len() as i64);
                return Some(job);
            }
            if state.stopped {
                return None;
            }
            self.available.wait(&mut state);
        }
    }

    /// Pops the front job if `pred` accepts it, waiting until `deadline`
    /// for one to arrive. Used by the batcher to gather companions for a
    /// forming batch: an incompatible job at the front ends the batch at a
    /// [`PopMore::Boundary`] (FIFO order is never reordered around), an
    /// empty queue at the deadline ends it at [`PopMore::TimedOut`].
    pub fn pop_compatible(&self, deadline: Instant, pred: impl Fn(&QueuedJob) -> bool) -> PopMore {
        let mut state = self.state.lock();
        loop {
            if let Some(front) = state.jobs.front() {
                if !pred(front) {
                    return PopMore::Boundary;
                }
                let job = state.jobs.pop_front().expect("front exists");
                aoft_obs::global().queue_depth.set(state.jobs.len() as i64);
                return PopMore::Job(job);
            }
            if state.stopped {
                return PopMore::Stopped;
            }
            let now = Instant::now();
            if now >= deadline {
                return PopMore::TimedOut;
            }
            self.available.wait_for(&mut state, deadline - now);
        }
    }

    /// Jobs currently waiting (excludes jobs already claimed by workers).
    pub fn len(&self) -> usize {
        self.state.lock().jobs.len()
    }

    /// Stops the queue: subsequent pushes are refused, blocked workers wake
    /// up, and queued-but-unclaimed jobs are returned for disposal (their
    /// reply channels answer `Stopped`).
    pub fn stop(&self) -> Vec<QueuedJob> {
        let mut state = self.state.lock();
        state.stopped = true;
        let drained = state.jobs.drain(..).collect();
        aoft_obs::global().queue_depth.set(0);
        drop(state);
        self.available.notify_all();
        drained
    }
}

/// Why [`JobQueue::push`] refused (the dropped job's reply channel closes,
/// which its handle reads as `Stopped`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushRefused {
    Full,
    Stopped,
}

/// Outcome of [`JobQueue::pop_compatible`].
pub(crate) enum PopMore {
    /// The front job matched the predicate and was claimed.
    Job(QueuedJob),
    /// The front job is incompatible with the forming batch; it stays
    /// queued for the next batch.
    Boundary,
    /// The flush deadline passed with the queue empty.
    TimedOut,
    /// The queue stopped while waiting.
    Stopped,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;

    fn job(id: u64) -> QueuedJob {
        let (reply, _rx) = unbounded();
        QueuedJob {
            id: JobId(id),
            spec: JobSpec::new(vec![1]),
            submitted_at: Instant::now(),
            reply,
        }
    }

    #[test]
    fn fifo_until_full() {
        let queue = JobQueue::new(2);
        queue.push(job(1)).ok().unwrap();
        queue.push(job(2)).ok().unwrap();
        assert_eq!(queue.push(job(3)).err(), Some(PushRefused::Full));
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop().unwrap().id, JobId(1));
        assert_eq!(queue.pop().unwrap().id, JobId(2));
    }

    #[test]
    fn stop_wakes_blocked_workers_and_drains() {
        let queue = JobQueue::new(4);
        queue.push(job(1)).ok().unwrap();
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                // First pop gets the queued job; second blocks until stop.
                let first = queue.pop();
                let second = queue.pop();
                (first, second)
            });
            std::thread::sleep(std::time::Duration::from_millis(30));
            let drained = queue.stop();
            assert!(drained.is_empty(), "worker claimed the job first");
            let (first, second) = waiter.join().unwrap();
            assert_eq!(first.unwrap().id, JobId(1));
            assert!(second.is_none());
        });
        assert_eq!(queue.push(job(9)).err(), Some(PushRefused::Stopped));
    }

    #[test]
    fn pop_compatible_respects_boundary_deadline_and_stop() {
        let queue = JobQueue::new(4);
        queue.push(job(1)).ok().unwrap();
        queue.push(job(2)).ok().unwrap();
        let soon = Instant::now() + std::time::Duration::from_millis(50);
        // Front accepted → claimed in FIFO order.
        match queue.pop_compatible(soon, |j| j.id == JobId(1)) {
            PopMore::Job(j) => assert_eq!(j.id, JobId(1)),
            _ => panic!("front job matches"),
        }
        // Front rejected → boundary, job stays queued.
        assert!(matches!(
            queue.pop_compatible(soon, |j| j.id != JobId(2)),
            PopMore::Boundary
        ));
        assert_eq!(queue.len(), 1);
        queue.pop().unwrap();
        // Empty queue → times out at the deadline.
        let deadline = Instant::now() + std::time::Duration::from_millis(20);
        assert!(matches!(
            queue.pop_compatible(deadline, |_| true),
            PopMore::TimedOut
        ));
        assert!(Instant::now() >= deadline, "waited out the deadline");
        // Stopped queue → reports stop, not timeout.
        queue.stop();
        assert!(matches!(
            queue.pop_compatible(Instant::now() + std::time::Duration::from_secs(5), |_| true),
            PopMore::Stopped
        ));
    }

    #[test]
    fn stop_returns_unclaimed_jobs() {
        let queue = JobQueue::new(4);
        queue.push(job(1)).ok().unwrap();
        queue.push(job(2)).ok().unwrap();
        let drained = queue.stop();
        assert_eq!(drained.len(), 2);
        assert!(queue.pop().is_none());
    }
}
