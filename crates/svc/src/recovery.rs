//! Diagnosis-driven recovery bookkeeping: strikes, quarantine, and degraded
//! cube planning.
//!
//! The service keeps the paper's fail-stop loop alive across jobs: every
//! fail-stopped attempt is fed to the diagnosis layer, implicated *physical*
//! nodes accumulate strikes, and repeat offenders are quarantined
//! service-wide. Retries run on the largest subcube of surviving nodes —
//! degraded mode — until the cube shrinks below the configured minimum.

use std::collections::{BTreeMap, BTreeSet};

use aoft_sim::ErrorReport;
use aoft_sort::diagnosis::diagnose;
use aoft_sort::Violation;
use parking_lot::Mutex;

/// Where an attempt runs: a logical `2^dim` cube mapped onto physical labels.
#[derive(Debug, Clone)]
pub(crate) struct CubePlan {
    /// Logical cube dimension of the attempt.
    pub dim: u32,
    /// `map[logical] = physical` for each of the `2^dim` logical labels.
    pub map: Vec<u32>,
}

/// What [`Recovery::record_failure`] learned from one fail-stopped attempt.
pub(crate) struct FailureVerdict {
    /// Physical labels implicated by diagnosis (the job avoids these on its
    /// own retries even when the evidence is too weak to strike).
    pub suspects: Vec<u32>,
    /// Physical labels whose strike count just crossed the quarantine
    /// threshold (the service should purge their cached links).
    pub newly_quarantined: Vec<u32>,
}

// Ordered containers throughout: recovery decisions must be identical under
// replay, so nothing in the strike/quarantine path may depend on hash-map
// iteration order (the suspects themselves are accumulated in BTreeSets by
// `record_failure` and the diagnosis layer for the same reason).
struct RecoveryState {
    strikes: BTreeMap<u32, u32>,
    quarantined: BTreeSet<u32>,
}

/// Service-wide fault memory shared by all workers.
pub(crate) struct Recovery {
    dim: u32,
    min_dim: u32,
    quarantine_after: u32,
    state: Mutex<RecoveryState>,
}

impl Recovery {
    pub fn new(dim: u32, min_dim: u32, quarantine_after: u32) -> Self {
        Self {
            dim,
            min_dim,
            quarantine_after,
            state: Mutex::new(RecoveryState {
                strikes: BTreeMap::new(),
                quarantined: BTreeSet::new(),
            }),
        }
    }

    /// Plans the largest cube that avoids both the service quarantine and
    /// the job's own `avoid` set; `Err(healthy)` when fewer than
    /// `2^min_dim` nodes remain.
    pub fn plan(&self, avoid: &BTreeSet<u32>) -> Result<CubePlan, usize> {
        let state = self.state.lock();
        let healthy: Vec<u32> = (0..1u32 << self.dim)
            .filter(|label| !state.quarantined.contains(label) && !avoid.contains(label))
            .collect();
        drop(state);
        let dim = (usize::BITS - 1)
            .checked_sub(healthy.len().leading_zeros())
            .map(|d| d.min(self.dim))
            .unwrap_or(0);
        if dim < self.min_dim {
            return Err(healthy.len());
        }
        let map = healthy[..1 << dim].to_vec();
        Ok(CubePlan { dim, map })
    }

    /// Digests a fail-stopped attempt: diagnoses the reports on the
    /// attempt's logical cube, translates the implicated nodes to physical
    /// labels, and applies strikes.
    ///
    /// Two evidence classes feed the strike set. Every *missing-message*
    /// accusation strikes *both* endpoints of the dead link — Definition 3
    /// case 2a: the blame cannot be attributed to either endpoint alone,
    /// and the detector itself may be the faulty party (a node whose sends
    /// are silently dropped ends up accusing its own starved partner).
    /// Value-predicate accusations (Φ_P/Φ_F/Φ_C) implicate only the named
    /// suspect, never the detector: receiver-side detection of bad *content*
    /// is evidence the detector works — a Byzantine sender can make many
    /// healthy receivers fire at once, and striking them all would evict
    /// the whole cube. When the reports are additionally mutually
    /// consistent *and* their intersection localizes to link granularity
    /// (at most two nodes), the intersection is struck too. Coarser
    /// consistent regions — a home subcube, or the whole machine for a
    /// late-stage predicate — are detection without localization: striking
    /// them would quarantine healthy hardware wholesale, so they are left
    /// to the retry (and, for persistent faults, to the sharper dead-link
    /// evidence repeat failures produce). The broad union of an
    /// inconsistent report set is never struck for the same reason.
    ///
    /// One evidence class is stronger than a strike: a Φ_C *equivocation
    /// proof*. When the detection site reports a consistency violation with
    /// a named suspect, the disagreeing entry was the sender's *own* —
    /// vertex-disjoint copies of it share only the owner (Lemma 6), so the
    /// sender was caught contradicting itself about its own value. That
    /// node is quarantined directly, bypassing the repeat-offender
    /// threshold: an equivocator that survives to a retry gets another
    /// chance to poison a fresh subcube.
    pub fn record_failure(&self, reports: &[ErrorReport], plan: &CubePlan) -> FailureVerdict {
        if reports.is_empty() {
            return FailureVerdict {
                suspects: Vec::new(),
                newly_quarantined: Vec::new(),
            };
        }
        let dead_link = Violation::MessageLost {
            from: aoft_hypercube::NodeId::new(0),
        }
        .code();
        let equivocation = equivocation_codes();
        let diagnosis = diagnose(reports, plan.dim);
        let mut logical: BTreeSet<usize> = BTreeSet::new();
        let mut proven: BTreeSet<usize> = BTreeSet::new();
        for report in reports {
            if let Some(suspect) = report.suspect {
                // Fail-stop cascades echo: once the first detector
                // fail-stops, every partner still waiting on it times out
                // and accuses the now-silent node, and those partners'
                // fail-stops trigger accusations in turn. An accusation is
                // an echo — a reaction to the protocol's own fail-stop, not
                // independent evidence — when its suspect is already on
                // record as a detector at a strictly earlier tick: the
                // suspect was demonstrably alive and vigilant then, so its
                // later silence is the fail-stop contract at work. Striking
                // echoes would let one fault implicate half the machine.
                // The genuinely faulty stay covered: a crashed node never
                // files a report, and a Byzantine node that fabricates an
                // early accusation to immunize itself strikes its own link
                // pair by filing it (case 2a strikes both endpoints).
                if report.code == dead_link
                    && reports
                        .iter()
                        .any(|prior| prior.detector == suspect && prior.at < report.at)
                {
                    continue;
                }
                logical.insert(suspect.index());
                if report.code == dead_link {
                    logical.insert(report.detector.index());
                }
                if equivocation.contains(&report.code) {
                    proven.insert(suspect.index());
                }
            }
        }
        if diagnosis.is_consistent() && diagnosis.suspects().len() <= 2 {
            logical.extend(diagnosis.suspects().iter().map(|node| node.index()));
        }
        let proven: BTreeSet<u32> = proven
            .into_iter()
            .filter_map(|index| plan.map.get(index).copied())
            .collect();
        let suspects: Vec<u32> = logical
            .into_iter()
            .filter_map(|index| plan.map.get(index).copied())
            .collect();
        // `u32::MAX` is the documented "quarantine disabled" sentinel
        // (soak harnesses rotate transient faults through every node, where
        // eviction would exhaust the cube). Suspects still feed the per-job
        // avoid set either way; only the service-wide eviction is gated.
        let disabled = self.quarantine_after == u32::MAX;
        let mut newly_quarantined = Vec::new();
        let mut state = self.state.lock();
        for &label in &suspects {
            if state.quarantined.contains(&label) {
                continue;
            }
            let strikes = state.strikes.entry(label).or_insert(0);
            *strikes = (*strikes).saturating_add(1);
            if proven.contains(&label) {
                // Equivocation proof: saturate past the threshold.
                *strikes = (*strikes).max(self.quarantine_after);
            }
            if !disabled && *strikes >= self.quarantine_after {
                state.quarantined.insert(label);
                newly_quarantined.push(label);
            }
        }
        FailureVerdict {
            suspects,
            newly_quarantined,
        }
    }

    /// Physical labels currently quarantined, ascending.
    pub fn quarantined(&self) -> Vec<u32> {
        self.state.lock().quarantined.iter().copied().collect()
    }
}

/// The violation codes whose named suspect constitutes an equivocation
/// proof: the Φ_C checks fire them only when a sender's *own* entry
/// disagreed with (or was missing from) a vertex-disjoint copy.
fn equivocation_codes() -> [u32; 2] {
    let probe = aoft_hypercube::NodeId::new(0);
    [
        Violation::Inconsistent {
            stage: 0,
            step: 0,
            entry: probe,
        }
        .code(),
        Violation::MissingEntry {
            stage: 0,
            step: 0,
            entry: probe,
        }
        .code(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoft_hypercube::NodeId;
    use aoft_sim::Ticks;

    fn missing_message(detector: u32, suspect: u32) -> ErrorReport {
        ErrorReport {
            detector: NodeId::new(detector),
            at: Ticks::ZERO,
            code: Violation::MessageLost {
                from: NodeId::new(suspect),
            }
            .code(),
            stage: Some(0),
            suspect: Some(NodeId::new(suspect)),
            detail: String::new(),
        }
    }

    fn bad_value(detector: u32, suspect: u32) -> ErrorReport {
        ErrorReport {
            detector: NodeId::new(detector),
            at: Ticks::ZERO,
            code: Violation::Inconsistent {
                stage: 0,
                step: 0,
                entry: NodeId::new(suspect),
            }
            .code(),
            stage: Some(0),
            suspect: Some(NodeId::new(suspect)),
            detail: String::new(),
        }
    }

    #[test]
    fn full_cube_plan_is_identity() {
        let recovery = Recovery::new(3, 1, 2);
        let plan = recovery.plan(&BTreeSet::new()).unwrap();
        assert_eq!(plan.dim, 3);
        assert_eq!(plan.map, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn avoid_set_degrades_the_cube() {
        let recovery = Recovery::new(3, 1, 2);
        let avoid: BTreeSet<u32> = [5].into();
        let plan = recovery.plan(&avoid).unwrap();
        assert_eq!(plan.dim, 2, "7 healthy nodes hold a 4-node cube");
        assert_eq!(plan.map, vec![0, 1, 2, 3]);
        // Avoiding a low label shifts the map past it.
        let avoid: BTreeSet<u32> = [0, 2].into();
        let plan = recovery.plan(&avoid).unwrap();
        assert_eq!(plan.map, vec![1, 3, 4, 5]);
    }

    #[test]
    fn repeat_strikes_quarantine_and_exhaust() {
        let recovery = Recovery::new(3, 3, 2);
        let plan = recovery.plan(&BTreeSet::new()).unwrap();
        // Corroborated accusations: {1,3} ∩ {2,3} = {3}; both detectors are
        // link endpoints too, so the strike set is {1, 2, 3}.
        let reports = [missing_message(1, 3), missing_message(2, 3)];
        let first = recovery.record_failure(&reports, &plan);
        assert_eq!(first.suspects, vec![1, 2, 3]);
        assert!(
            first.newly_quarantined.is_empty(),
            "one strike is not enough"
        );
        let second = recovery.record_failure(&reports, &plan);
        assert_eq!(second.newly_quarantined, vec![1, 2, 3]);
        assert_eq!(recovery.quarantined(), vec![1, 2, 3]);
        // 5 healthy nodes cannot hold the 2^3 minimum cube.
        assert!(matches!(recovery.plan(&BTreeSet::new()), Err(5)));
    }

    #[test]
    fn value_accusations_spare_the_detectors() {
        // Three healthy receivers catch one Byzantine sender's inconsistent
        // values. Only the sender is struck — striking the detectors too
        // would let one faulty node evict the cube.
        let recovery = Recovery::new(3, 1, 1);
        let plan = recovery.plan(&BTreeSet::new()).unwrap();
        let reports = [bad_value(1, 5), bad_value(4, 5), bad_value(7, 5)];
        let verdict = recovery.record_failure(&reports, &plan);
        assert_eq!(verdict.suspects, vec![5]);
        assert_eq!(recovery.quarantined(), vec![5]);
    }

    #[test]
    fn equivocation_proof_quarantines_immediately() {
        // quarantine_after = 2, but a Φ_C equivocation proof (a consistency
        // violation naming the self-contradicting sender) bypasses the
        // repeat-offender threshold.
        let recovery = Recovery::new(3, 1, 2);
        let plan = recovery.plan(&BTreeSet::new()).unwrap();
        let verdict = recovery.record_failure(&[bad_value(1, 5)], &plan);
        assert_eq!(verdict.suspects, vec![5]);
        assert_eq!(verdict.newly_quarantined, vec![5]);
        assert_eq!(recovery.quarantined(), vec![5]);
    }

    #[test]
    fn cascade_echo_accusations_are_not_evidence() {
        // P1 catches crashed P5 at tick 10 and fail-stops; P3 then times
        // out on the now-silent P1 (tick 70), and P6 on the now-silent P3
        // (tick 130). Only the root accusation may strike: P1 and P3 were
        // detectors at earlier ticks, so their silence is the fail-stop
        // contract, not a fault. Without the filter one crash would strike
        // six of eight nodes.
        let recovery = Recovery::new(3, 1, 1);
        let plan = recovery.plan(&BTreeSet::new()).unwrap();
        let at = |report: ErrorReport, tick: u64| ErrorReport {
            at: Ticks::from_ticks(tick),
            ..report
        };
        let reports = [
            at(missing_message(1, 5), 10),
            at(missing_message(3, 1), 70),
            at(missing_message(6, 3), 130),
        ];
        let verdict = recovery.record_failure(&reports, &plan);
        assert_eq!(verdict.suspects, vec![1, 5], "root link pair only");
        assert_eq!(recovery.quarantined(), vec![1, 5]);
    }

    #[test]
    fn simultaneous_mutual_accusations_strike_the_pair() {
        // Both endpoints of one dead link time out on each other at the
        // same tick. Neither accusation is an echo (no strictly earlier
        // report), so the pair is struck symmetrically — case 2a.
        let recovery = Recovery::new(3, 1, 1);
        let plan = recovery.plan(&BTreeSet::new()).unwrap();
        let reports = [missing_message(4, 5), missing_message(5, 4)];
        let verdict = recovery.record_failure(&reports, &plan);
        assert_eq!(verdict.suspects, vec![4, 5]);
    }

    #[test]
    fn max_threshold_disables_quarantine_even_for_proofs() {
        // `u32::MAX` is the "quarantine disabled" sentinel: a soak harness
        // rotating transient faults through every node must never evict
        // hardware service-wide, yet the suspect still feeds the per-job
        // avoid set so the striking job retries around it.
        let recovery = Recovery::new(3, 1, u32::MAX);
        let plan = recovery.plan(&BTreeSet::new()).unwrap();
        for _ in 0..3 {
            let verdict = recovery.record_failure(&[bad_value(1, 5)], &plan);
            assert_eq!(verdict.suspects, vec![5]);
            assert!(verdict.newly_quarantined.is_empty());
        }
        assert!(recovery.quarantined().is_empty());
    }

    #[test]
    fn missing_message_still_needs_repeat_evidence() {
        // Contrast with the equivocation proof: a dead-link accusation is
        // ambiguous (Definition 3 case 2a) and must recur before anyone is
        // quarantined.
        let recovery = Recovery::new(3, 1, 2);
        let plan = recovery.plan(&BTreeSet::new()).unwrap();
        let verdict = recovery.record_failure(&[missing_message(1, 5)], &plan);
        assert!(verdict.newly_quarantined.is_empty());
        assert!(recovery.quarantined().is_empty());
    }

    #[test]
    fn equivocation_attribution_is_deterministic() {
        // The same synthetic Φ_C evidence must produce the same verdict on
        // every fresh recovery state — replay depends on it.
        let reports = [bad_value(1, 3), bad_value(6, 3), missing_message(2, 4)];
        let mut verdicts = Vec::new();
        for _ in 0..3 {
            let recovery = Recovery::new(3, 1, 2);
            let plan = recovery.plan(&BTreeSet::new()).unwrap();
            let v = recovery.record_failure(&reports, &plan);
            verdicts.push((v.suspects, v.newly_quarantined, recovery.quarantined()));
        }
        assert_eq!(verdicts[0], verdicts[1]);
        assert_eq!(verdicts[1], verdicts[2]);
        let (suspects, quarantined, _) = &verdicts[0];
        assert!(suspects.contains(&3), "the equivocator is a suspect");
        assert_eq!(
            quarantined,
            &vec![3],
            "only the proven equivocator is quarantined on first evidence"
        );
    }

    #[test]
    fn suspects_translate_through_the_map() {
        let recovery = Recovery::new(3, 1, 1);
        // Degraded 4-node cube on physical labels {1, 3, 4, 5}.
        let plan = CubePlan {
            dim: 2,
            map: vec![1, 3, 4, 5],
        };
        // Logical node 2 is physical label 4.
        let reports = [missing_message(0, 2), missing_message(3, 2)];
        let verdict = recovery.record_failure(&reports, &plan);
        assert!(verdict.suspects.contains(&4));
        assert_eq!(recovery.quarantined(), verdict.newly_quarantined);
        assert!(recovery.quarantined().contains(&4));
    }
}
