//! Multi-process fleet mode: cube-host child processes behind one parent
//! router, wired over real sockets.
//!
//! The in-process [`FleetRouter`](crate::FleetRouter) owns its cubes as
//! threads; this module splits that across *processes*. Each child runs a
//! [`CubeHost`]: a complete [`SortService`] cube on its own loopback
//! transport, plus one control-plane connection to the parent — a single
//! multiplexed session (`aoft_net::MuxTransport`) carrying the job link
//! and the result link. The parent runs a [`RemoteFleet`]: it routes jobs
//! round-robin across live children, fails over when a child answers
//! loudly or its session dies, and records the quarantine each child
//! reports — the paper's "appropriate action" loop stretched across a
//! process boundary.
//!
//! Labels: the parent is node [`PARENT_LABEL`] on the control plane; each
//! child picks a label below it, so the child is always the `lo` end of
//! the peer pair and therefore the dialing side. The parent only binds
//! and waits — it needs no routing table for children.
//!
//! Everything on the wire is [`Wire`]-encoded and travels in mux Data
//! frames: CRC-checked, length-delimited, demux-tagged. A corrupted
//! control stream kills the session, which the parent observes as a dead
//! child — detectable, never silent.

use std::net::SocketAddr;
use std::time::Duration;

use aoft_net::wire::{CodecError, Wire};
use aoft_net::{CancelToken, LinkId, LinkRx, LinkTx, MuxConfig, MuxTransport, NetError, Transport};
use aoft_sim::Packet;
use aoft_sort::Msg;

use crate::config::SvcConfig;
use crate::job::JobSpec;
use crate::service::SortService;

/// The parent's node label on the control plane. Children must choose
/// labels strictly below this so they are the dialing (`lo`) end of their
/// session with the parent.
pub const PARENT_LABEL: u32 = 1000;

/// Demux tag of the parent→child job link.
const JOB_TAG: u8 = 0;
/// Demux tag of the child→parent result link.
const RESULT_TAG: u8 = 1;

/// One control-plane message between the parent and a cube host.
#[derive(Debug, Clone, PartialEq)]
pub enum RemoteMsg {
    /// Parent → child: sort these keys.
    Job {
        /// Parent-assigned sequence number, echoed in the answer.
        seq: u64,
        /// The keys to sort.
        keys: Vec<i32>,
    },
    /// Child → parent: the job completed with a verified output.
    Done {
        /// Echo of the job's sequence number.
        seq: u64,
        /// The verified sorted keys.
        output: Vec<i32>,
        /// Attempts the child's cube consumed, successful one included.
        attempts: u64,
        /// Whether the job survived at least one fail-stop and retry.
        recovered: bool,
        /// Nodes the child's cube has quarantined so far (cumulative) —
        /// how quarantine state crosses the process boundary.
        quarantined: Vec<u32>,
    },
    /// Child → parent: the job failed loudly and should fail over.
    Failed {
        /// Echo of the job's sequence number.
        seq: u64,
        /// The child-side error, for diagnostics.
        error: String,
    },
}

impl Wire for RemoteMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RemoteMsg::Job { seq, keys } => {
                out.push(0);
                seq.encode(out);
                keys.encode(out);
            }
            RemoteMsg::Done {
                seq,
                output,
                attempts,
                recovered,
                quarantined,
            } => {
                out.push(1);
                seq.encode(out);
                output.encode(out);
                attempts.encode(out);
                recovered.encode(out);
                quarantined.encode(out);
            }
            RemoteMsg::Failed { seq, error } => {
                out.push(2);
                seq.encode(out);
                error.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let tag = u8::decode(input)?;
        match tag {
            0 => Ok(RemoteMsg::Job {
                seq: u64::decode(input)?,
                keys: Vec::<i32>::decode(input)?,
            }),
            1 => Ok(RemoteMsg::Done {
                seq: u64::decode(input)?,
                output: Vec::<i32>::decode(input)?,
                attempts: u64::decode(input)?,
                recovered: bool::decode(input)?,
                quarantined: Vec::<u32>::decode(input)?,
            }),
            2 => Ok(RemoteMsg::Failed {
                seq: u64::decode(input)?,
                error: String::decode(input)?,
            }),
            other => Err(CodecError::msg(format!(
                "unknown remote control message tag {other}"
            ))),
        }
    }
}

fn job_link(child: u32) -> LinkId {
    LinkId {
        from: PARENT_LABEL,
        to: child,
        tag: JOB_TAG,
    }
}

fn result_link(child: u32) -> LinkId {
    LinkId {
        from: child,
        to: PARENT_LABEL,
        tag: RESULT_TAG,
    }
}

/// A child process's side of the control plane: one resident
/// [`SortService`] cube, served job-by-job to the parent until the parent
/// goes away.
pub struct CubeHost;

impl CubeHost {
    /// Runs the serve loop: dial the parent at `parent`, then answer every
    /// [`RemoteMsg::Job`] with `Done` or `Failed` until the parent's
    /// session ends (orderly close or death), which is the host's normal
    /// exit. `label` must be below [`PARENT_LABEL`] and unique per child.
    ///
    /// The cube itself runs on `cube_transport` — typically a loopback
    /// [`MuxTransport`], optionally wrapped in a fault injector — so one
    /// process hosts one complete, independently-failing machine.
    ///
    /// # Errors
    ///
    /// [`NetError`] when the control plane cannot be established, or the
    /// cube's service fails to start (reported as [`NetError::Io`]).
    pub fn serve<T>(
        label: u32,
        parent: SocketAddr,
        svc: SvcConfig,
        cube_transport: T,
    ) -> Result<(), NetError>
    where
        T: Transport<Packet<Msg>> + Send + Sync + 'static,
    {
        if label >= PARENT_LABEL {
            return Err(NetError::Io(format!(
                "cube host label {label} must be below the parent label {PARENT_LABEL}"
            )));
        }
        let service = SortService::start(svc, cube_transport)
            .map_err(|e| NetError::Io(format!("cube service failed to start: {e}")))?;
        let control = MuxTransport::bind(MuxConfig::default())?;
        control.set_peer(PARENT_LABEL, parent);
        let deadline = Duration::from_secs(30);
        // The child dials: connect_rx on the job link and connect_tx on the
        // result link both resolve to the one parent session.
        let jobs: Box<dyn LinkRx<RemoteMsg>> = control.connect_rx(job_link(label), deadline)?;
        let results: Box<dyn LinkTx<RemoteMsg>> =
            control.connect_tx(result_link(label), deadline)?;
        let cancel = CancelToken::new();
        loop {
            let msg = match jobs.recv_deadline(Duration::from_secs(1), &cancel) {
                Ok(msg) => msg,
                Err(NetError::Timeout { .. }) => continue,
                // The parent closed the session or died: orderly exit.
                Err(NetError::Closed) | Err(NetError::PeerDead { .. }) => break,
                Err(err) => return Err(err),
            };
            let RemoteMsg::Job { seq, keys } = msg else {
                // The parent never sends answers; a stray one is corruption
                // the framing somehow missed. Refuse loudly.
                return Err(NetError::Codec("unexpected message on the job link".into()));
            };
            let answer = match service.submit(JobSpec::new(keys)) {
                Ok(handle) => match handle.wait() {
                    Ok(report) => {
                        let recovered = report.recovered();
                        RemoteMsg::Done {
                            seq,
                            output: report.output,
                            attempts: report.attempts as u64,
                            recovered,
                            quarantined: service.quarantined(),
                        }
                    }
                    Err(err) => RemoteMsg::Failed {
                        seq,
                        error: err.to_string(),
                    },
                },
                Err(err) => RemoteMsg::Failed {
                    seq,
                    error: err.to_string(),
                },
            };
            if results.send(answer).is_err() {
                break; // parent gone mid-answer
            }
        }
        service.shutdown();
        Ok(())
    }
}

/// One completed remote job: which child answered and how it got there.
#[derive(Debug, Clone)]
pub struct RemoteReport {
    /// Label of the child that produced the verified output.
    pub cube: u32,
    /// Children this job was rerouted away from before succeeding.
    pub reroutes: usize,
    /// The verified sorted keys.
    pub output: Vec<i32>,
    /// Attempts the answering child's cube consumed.
    pub attempts: u64,
    /// Whether the answering child recovered from at least one fail-stop.
    pub recovered: bool,
}

struct RemoteCube {
    label: u32,
    jobs: Box<dyn LinkTx<RemoteMsg>>,
    results: Box<dyn LinkRx<RemoteMsg>>,
    /// Cleared when the child's session dies or it stops answering; dead
    /// cubes leave the rotation permanently (a supervisor would respawn
    /// the process — out of scope here).
    alive: bool,
    /// Nodes this child has reported quarantined (cumulative).
    quarantined: Vec<u32>,
}

/// The parent's side of the control plane: routes jobs across cube-host
/// children, failing over on loud failures and dead sessions.
pub struct RemoteFleet {
    // Owns the control transport: dropping the fleet closes every child's
    // session, which is each child's exit signal.
    _control: MuxTransport,
    cubes: Vec<RemoteCube>,
    rr: usize,
    next_seq: u64,
    job_timeout: Duration,
    cancel: CancelToken,
    failovers: u64,
}

impl RemoteFleet {
    /// Waits for every child in `children` to dial `control` and wires
    /// their job/result links. `job_timeout` bounds how long one child may
    /// hold a job before the parent declares it dead and reroutes.
    ///
    /// # Errors
    ///
    /// [`NetError`] when any child fails to connect within `deadline`.
    pub fn connect(
        control: MuxTransport,
        children: &[u32],
        deadline: Duration,
        job_timeout: Duration,
    ) -> Result<Self, NetError> {
        let mut cubes = Vec::with_capacity(children.len());
        for &label in children {
            let jobs = control.connect_tx(job_link(label), deadline)?;
            let results = control.connect_rx(result_link(label), deadline)?;
            cubes.push(RemoteCube {
                label,
                jobs,
                results,
                alive: true,
                quarantined: Vec::new(),
            });
        }
        Ok(Self {
            _control: control,
            cubes,
            rr: 0,
            next_seq: 0,
            job_timeout,
            cancel: CancelToken::new(),
            failovers: 0,
        })
    }

    /// Children still in the routing rotation.
    pub fn alive(&self) -> usize {
        self.cubes.iter().filter(|c| c.alive).count()
    }

    /// Jobs that had to be rerouted away from a failing child.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Quarantined nodes as last reported by each live child, keyed by
    /// child label — cube-local recovery state, visible across the
    /// process boundary.
    pub fn quarantine_map(&self) -> Vec<(u32, Vec<u32>)> {
        self.cubes
            .iter()
            .map(|c| (c.label, c.quarantined.clone()))
            .collect()
    }

    /// Sorts `keys` somewhere in the fleet: round-robin over live
    /// children, rerouting on a loud child failure or a dead session until
    /// a child answers or none remain.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] when no live child remains;
    /// [`NetError::Io`] when every tried child failed the job loudly.
    pub fn submit(&mut self, keys: Vec<i32>) -> Result<RemoteReport, NetError> {
        let mut reroutes = 0usize;
        let mut last_error: Option<String> = None;
        for _ in 0..self.cubes.len() {
            let Some(index) = self.next_cube() else { break };
            let seq = self.next_seq;
            self.next_seq += 1;
            match self.run_on(index, seq, keys.clone()) {
                Ok((output, attempts, recovered)) => {
                    return Ok(RemoteReport {
                        cube: self.cubes[index].label,
                        reroutes,
                        output,
                        attempts,
                        recovered,
                    });
                }
                Err(RunError::ChildFailed(error)) => {
                    // The child is alive and honest about the failure (its
                    // own retries are exhausted); try a different one.
                    self.failovers += 1;
                    aoft_obs::global().fleet_failovers.inc();
                    reroutes += 1;
                    last_error = Some(error);
                }
                Err(RunError::ChildDead(err)) => {
                    self.cubes[index].alive = false;
                    self.failovers += 1;
                    aoft_obs::global().fleet_failovers.inc();
                    reroutes += 1;
                    last_error = Some(err.to_string());
                }
            }
        }
        match last_error {
            Some(error) if self.alive() > 0 => Err(NetError::Io(format!(
                "every live child failed the job: {error}"
            ))),
            _ => Err(NetError::Closed),
        }
    }

    /// The next live cube in round-robin order.
    fn next_cube(&mut self) -> Option<usize> {
        let n = self.cubes.len();
        for offset in 0..n {
            let index = (self.rr + offset) % n;
            if self.cubes[index].alive {
                self.rr = (index + 1) % n;
                return Some(index);
            }
        }
        None
    }

    fn run_on(
        &mut self,
        index: usize,
        seq: u64,
        keys: Vec<i32>,
    ) -> Result<(Vec<i32>, u64, bool), RunError> {
        let cube = &mut self.cubes[index];
        cube.jobs
            .send(RemoteMsg::Job { seq, keys })
            .map_err(RunError::ChildDead)?;
        loop {
            let answer = cube
                .results
                .recv_deadline(self.job_timeout, &self.cancel)
                .map_err(RunError::ChildDead)?;
            match answer {
                RemoteMsg::Done {
                    seq: got,
                    output,
                    attempts,
                    recovered,
                    quarantined,
                } => {
                    cube.quarantined = quarantined;
                    if got != seq {
                        continue; // stale answer from a job we rerouted past
                    }
                    return Ok((output, attempts, recovered));
                }
                RemoteMsg::Failed { seq: got, error } => {
                    if got != seq {
                        continue;
                    }
                    return Err(RunError::ChildFailed(error));
                }
                RemoteMsg::Job { .. } => {
                    return Err(RunError::ChildDead(NetError::Codec(
                        "unexpected message on the result link".into(),
                    )));
                }
            }
        }
    }
}

enum RunError {
    /// The child answered `Failed`: alive, but its cube gave up loudly.
    ChildFailed(String),
    /// The child's session died or timed out: out of the rotation.
    ChildDead(NetError),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_msg_round_trips() {
        let msgs = [
            RemoteMsg::Job {
                seq: 7,
                keys: vec![3, -1, 4, 1, -5],
            },
            RemoteMsg::Done {
                seq: 7,
                output: vec![-5, -1, 1, 3, 4],
                attempts: 2,
                recovered: true,
                quarantined: vec![5],
            },
            RemoteMsg::Failed {
                seq: 8,
                error: "cube exhausted".into(),
            },
        ];
        for msg in msgs {
            let bytes = aoft_net::wire::to_bytes(&msg);
            let got: RemoteMsg = aoft_net::wire::from_bytes(&bytes).expect("round trip");
            assert_eq!(got, msg);
        }
    }

    #[test]
    fn corrupt_tag_rejected() {
        let err = aoft_net::wire::from_bytes::<RemoteMsg>(&[9]).expect_err("unknown tag");
        assert!(err.0.contains("unknown remote control message tag"));
    }

    /// End-to-end control plane inside one process: a cube host serving a
    /// loopback cube, a fleet routing to it over real sockets.
    #[test]
    fn cube_host_answers_a_fleet_over_sockets() {
        let parent_control = MuxTransport::bind(MuxConfig::default()).expect("bind parent");
        let parent_addr = parent_control.local_addr();
        let host = std::thread::spawn(move || {
            let cube = MuxTransport::bind(MuxConfig::default()).expect("bind cube loopback");
            let addr = cube.local_addr();
            for label in 0..8 {
                cube.set_peer(label, addr);
            }
            let svc = SvcConfig::new(3).recv_timeout(Duration::from_millis(800));
            CubeHost::serve(101, parent_addr, svc, cube).expect("host serves until close");
        });
        let mut fleet = RemoteFleet::connect(
            parent_control,
            &[101],
            Duration::from_secs(10),
            Duration::from_secs(30),
        )
        .expect("child connects");
        let keys: Vec<i32> = (0..32i32).map(|x| x.wrapping_mul(-37) % 60).collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        let report = fleet.submit(keys).expect("remote job completes");
        assert_eq!(report.output, expected);
        assert_eq!(report.cube, 101);
        assert_eq!(report.reroutes, 0);
        drop(fleet); // closes the session; the host exits its serve loop
        host.join().expect("host thread exits cleanly");
    }
}
