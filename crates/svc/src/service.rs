//! The resident sort service: worker pool, scheduler, and recovery loop.

use std::any::Any;
use std::collections::BTreeSet;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aoft_net::{Backoff, LinkCache, MappedTransport, Transport};
use aoft_obs::ObsServer;
use aoft_sim::{ErrorReport, NodeMetrics, Packet, Trace};
use aoft_sort::composite::{demux, mux, CompositeCodec};
use aoft_sort::{Msg, SortBuilder, SortError};

use crate::batch::Batcher;
use crate::config::{ConfigError, SvcConfig};
use crate::job::{JobError, JobHandle, JobId, JobReport, JobSpec, SubmitError};
use crate::metrics::{MetricsSink, SvcMetrics};
use crate::queue::{JobQueue, PushRefused, QueuedJob};
use crate::recovery::{CubePlan, Recovery};

/// A resident sorting service over a shared transport.
///
/// The service keeps a pool of worker threads alive over one transport `T`
/// (in-process channels, loopback TCP, a faulty wrapper — anything
/// implementing [`Transport`]) and serves a stream of sort jobs:
///
/// * [`submit`](SortService::submit) admits jobs into a bounded queue and
///   rejects with [`SubmitError::Backpressure`] past the configured depth —
///   callers see load instead of the service buffering without bound;
/// * each worker slot owns a private link-tag namespace, so concurrent jobs
///   multiplex the same physical cube without crosstalk, and every attempt
///   runs under a fresh run id so late frames from a fail-stopped attempt
///   are dropped, not mistaken for the retry's traffic;
/// * when an attempt fail-stops, the reports are fed to the diagnosis layer:
///   implicated nodes are avoided for the job's remaining attempts, repeat
///   offenders are quarantined service-wide, and the retry runs on the
///   largest surviving subcube (degraded mode) until
///   [`SvcConfig::min_dim`] is reached.
///
/// Per the paper's fail-stop discipline the service never returns an
/// unverified result: a job either completes with a verified sorted output
/// or fails loudly with [`JobError`].
pub struct SortService<T>
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    inner: Arc<Inner<T>>,
    workers: Vec<JoinHandle<()>>,
    /// The Prometheus endpoint, when [`SvcConfig::metrics_addr`] asked for
    /// one. Serving stops when the service is dropped.
    obs: Option<ObsServer>,
}

struct Inner<T>
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    config: SvcConfig,
    cache: Arc<LinkCache<T>>,
    queue: JobQueue,
    metrics: MetricsSink,
    recovery: Recovery,
    /// Job ids handed to clients.
    next_job: AtomicU64,
    /// Run ids stamped on packets: unique per (job, attempt) service-wide,
    /// so receivers can discard stale frames from any earlier attempt that
    /// shared the same cached links.
    next_run: AtomicU64,
}

impl<T> SortService<T>
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    /// Validates `config`, wraps `transport` in the service's link cache,
    /// and spawns the worker pool (plus the metrics endpoint when
    /// [`SvcConfig::metrics_addr`] is set).
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when the configuration cannot serve any job, or when
    /// the requested metrics address cannot be bound.
    pub fn start(config: SvcConfig, transport: T) -> Result<Self, ConfigError> {
        config.validate()?;
        let obs = match config.metrics_addr {
            Some(addr) => Some(
                ObsServer::bind(addr)
                    .map_err(|e| ConfigError(format!("metrics endpoint {addr}: {e}")))?,
            ),
            None => None,
        };
        let inner = Arc::new(Inner {
            cache: Arc::new(LinkCache::new(transport)),
            queue: JobQueue::new(config.queue_depth),
            metrics: MetricsSink::default(),
            recovery: Recovery::new(config.dim, config.min_dim, config.quarantine_after),
            next_job: AtomicU64::new(0),
            next_run: AtomicU64::new(0),
            config,
        });
        let workers = (0..inner.config.workers)
            .map(|slot| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("aoft-svc-{slot}"))
                    .spawn(move || worker_loop(inner, slot))
                    .expect("spawn service worker")
            })
            .collect();
        Ok(Self {
            inner,
            workers,
            obs,
        })
    }

    /// The bound metrics-endpoint address (resolved port when configured
    /// with port 0); `None` when the endpoint is disabled.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs.as_ref().map(ObsServer::local_addr)
    }

    /// Submits a job for asynchronous completion.
    ///
    /// # Errors
    ///
    /// * [`SubmitError::Backpressure`] — the queue is at depth; resubmit
    ///   later.
    /// * [`SubmitError::Invalid`] — the key count can never divide over
    ///   this service's cube (checked against the *full* cube; any degraded
    ///   subcube is a smaller power of two and divides too).
    /// * [`SubmitError::Stopped`] — the service has shut down.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        let nodes = 1usize << self.inner.config.dim;
        if spec.keys.is_empty() {
            self.inner.metrics.job_rejected();
            return Err(SubmitError::Invalid("no keys to sort".into()));
        }
        if spec.keys.len() % nodes != 0 {
            self.inner.metrics.job_rejected();
            return Err(SubmitError::Invalid(format!(
                "{} keys do not divide over the service's {nodes}-node cube",
                spec.keys.len()
            )));
        }
        let id = JobId(self.inner.next_job.fetch_add(1, Ordering::Relaxed) + 1);
        let (reply, rx) = crossbeam_channel::unbounded();
        let job = QueuedJob {
            id,
            spec,
            submitted_at: Instant::now(),
            reply,
        };
        match self.inner.queue.push(job) {
            Ok(()) => {
                self.inner.metrics.job_submitted();
                Ok(JobHandle { id, reply: rx })
            }
            Err(PushRefused::Full) => {
                self.inner.metrics.job_rejected();
                Err(SubmitError::Backpressure {
                    depth: self.inner.config.queue_depth,
                })
            }
            Err(PushRefused::Stopped) => Err(SubmitError::Stopped),
        }
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> SvcMetrics {
        self.inner
            .metrics
            .snapshot(self.inner.queue.len(), self.inner.recovery.quarantined())
    }

    /// Physical node labels currently quarantined, ascending.
    pub fn quarantined(&self) -> Vec<u32> {
        self.inner.recovery.quarantined()
    }

    /// The running configuration.
    pub fn config(&self) -> &SvcConfig {
        &self.inner.config
    }

    /// Stops admissions, answers queued-but-unstarted jobs with
    /// [`JobError::Stopped`], and joins the workers (in-flight jobs run to
    /// completion first). Dropping the service does the same.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        for job in self.inner.queue.stop() {
            let _ = job.reply.send(Err(JobError::Stopped));
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<T> Drop for SortService<T>
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop<T>(inner: Arc<Inner<T>>, slot: usize)
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    let batcher = Batcher::new(&inner.config);
    while let Some(batch) = batcher.next_batch(&inner.queue) {
        inner.metrics.batch_flushed(batch.jobs.len(), batch.trigger);
        let inflight = batch.jobs.len() as i64;
        aoft_obs::global().inflight_jobs.add(inflight);
        if batch.jobs.len() == 1 {
            // Solo batches — and everything when `batch_max` is 1 — take
            // the original per-job path, byte for byte.
            let job = batch.jobs.into_iter().next().expect("batch of one");
            let (result, effort) = run_job(&inner, slot, &job);
            match &result {
                Ok(report) => inner.metrics.job_completed(
                    report.latency,
                    (report.attempts - 1) as u64,
                    effort,
                    &report.metrics,
                ),
                Err(_) => inner
                    .metrics
                    .job_failed(inner.config.max_attempts.saturating_sub(1) as u64, effort),
            }
            let _ = job.reply.send(result);
        } else {
            run_batch(&inner, slot, batch.jobs, batcher.codec());
        }
        aoft_obs::global().inflight_jobs.add(-inflight);
    }
}

/// One job's attempt loop: plan cube → run → on fail-stop diagnose, strike,
/// back off, retry degraded.
///
/// The second return value is the job's total effort in ticks — node-time
/// summed over every attempt, fail-stopped ones included, so the cost of
/// retried work is billed whether or not the job ultimately succeeds.
fn run_job<T>(inner: &Inner<T>, slot: usize, job: &QueuedJob) -> (Result<JobReport, JobError>, u64)
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    let config = &inner.config;
    // Each worker slot owns `dim` consecutive link tags (validated ≤ 256 at
    // start), so concurrent jobs never share a physical link.
    let tag_base = (slot as u32 * config.dim) as u8;
    let mut avoid: BTreeSet<u32> = BTreeSet::new();
    let mut detections: Vec<Vec<ErrorReport>> = Vec::new();
    let mut backoff = Backoff::new(config.backoff_initial, config.backoff_max);
    let mut effort: u64 = 0;

    for attempt in 0..config.max_attempts {
        if attempt > 0 {
            let delay = backoff.next_delay();
            if delay > Duration::ZERO {
                std::thread::sleep(delay);
            }
        }
        if attempt > 0 && inner.recovery.plan(&avoid).is_err() {
            // The job-local avoid set has outgrown the machine: a timeout
            // cascade implicated more nodes than any single fault can.
            // A clean retry on whatever the service still trusts beats
            // refusing the job — transient congestion clears, and a
            // persistent fault re-detects loudly on the fresh attempt.
            avoid.clear();
        }
        let plan = match inner.recovery.plan(&avoid) {
            Ok(plan) => plan,
            Err(healthy) => {
                return (
                    Err(JobError::CubeExhausted {
                        healthy,
                        min_dim: config.min_dim,
                    }),
                    effort,
                )
            }
        };
        let nodes = 1usize << plan.dim;
        if job.spec.keys.len() % nodes != 0 {
            // Unreachable after the submit-side check (degraded cubes are
            // smaller powers of two), kept as defense in depth.
            return (
                Err(JobError::Invalid(format!(
                    "{} keys do not divide over the degraded {nodes}-node cube",
                    job.spec.keys.len()
                ))),
                effort,
            );
        }
        let run_id = inner.next_run.fetch_add(1, Ordering::Relaxed) + 1;
        aoft_obs::global().attempts.inc();
        aoft_obs::emit(
            aoft_obs::Event::new("attempt_started")
                .job(job.id.0)
                .attempt(attempt as u32)
                .detail(format!("run {run_id} on a {}-dim cube", plan.dim)),
        );
        let transport = MappedTransport::new(Arc::clone(&inner.cache), plan.map.clone())
            .with_tag_base(tag_base);
        let mut builder = SortBuilder::new(config.algorithm)
            .keys(job.spec.keys.clone())
            .direction(job.spec.direction)
            .nodes(nodes)
            .recv_timeout(config.recv_timeout)
            .trace(job.spec.capture_trace)
            .job(run_id);
        if attempt == 0 {
            // Injected model faults are transient: they hit the first
            // attempt only (see `JobSpec::fault_plan`).
            if let Some(plan) = &job.spec.fault_plan {
                builder = builder.fault_plan(plan.clone());
            }
        }
        match std::panic::catch_unwind(AssertUnwindSafe(|| builder.run_on(transport))) {
            Ok(Ok(report)) => {
                effort += report.metrics().effort();
                let mut merged = NodeMetrics::default();
                for node in &report.metrics().nodes {
                    merged.merge(node);
                }
                merged.merge(&report.metrics().host);
                return (
                    Ok(JobReport {
                        id: job.id,
                        output: report.output().to_vec(),
                        attempts: attempt + 1,
                        dim: plan.dim,
                        detections,
                        latency: job.submitted_at.elapsed(),
                        metrics: merged,
                        effort,
                        trace: report.trace().clone(),
                    }),
                    effort,
                );
            }
            Ok(Err(SortError::Detected {
                reports,
                effort: wasted,
            })) => {
                effort += wasted;
                aoft_obs::emit(
                    aoft_obs::Event::new("attempt_failstop")
                        .job(job.id.0)
                        .attempt(attempt as u32)
                        .detail(format!("{} report(s)", reports.len())),
                );
                digest_failure(inner, &reports, &plan, &mut avoid);
                detections.push(reports);
            }
            Ok(Err(err)) => return (Err(JobError::Invalid(err.to_string())), effort),
            Err(payload) => return (Err(JobError::Runtime(panic_message(payload))), effort),
        }
    }
    (
        Err(JobError::Exhausted {
            attempts: config.max_attempts,
            detections,
        }),
        effort,
    )
}

/// One job riding a batch, with the accounting that follows it through
/// retries and re-splits.
struct BatchJob {
    job: QueuedJob,
    /// Effort billed so far: this rider's proportional share of every
    /// attempt it took part in, fail-stopped ones included.
    effort: u64,
    /// Fail-stop reports of every attempt this rider was aboard.
    detections: Vec<Vec<ErrorReport>>,
    /// Attempts this rider has been aboard (batched or post-split).
    attempts: usize,
}

/// Runs a multi-job batch to completion: every rider's reply channel is
/// answered (success or loud failure) and the metrics sink billed, exactly
/// as the solo path does per job.
fn run_batch<T>(inner: &Inner<T>, slot: usize, jobs: Vec<QueuedJob>, codec: CompositeCodec)
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    let riders = jobs
        .into_iter()
        .map(|job| BatchJob {
            job,
            effort: 0,
            detections: Vec::new(),
            attempts: 0,
        })
        .collect();
    // One avoid set and one backoff schedule for the whole batch, shared
    // across re-splits: violations name nodes, not jobs, so what one half
    // learns the other must not re-discover.
    let mut avoid: BTreeSet<u32> = BTreeSet::new();
    let mut backoff = Backoff::new(inner.config.backoff_initial, inner.config.backoff_max);
    execute_batch(
        inner,
        slot,
        riders,
        codec,
        inner.config.max_attempts,
        &mut avoid,
        &mut backoff,
    );
}

/// One cube attempt over `riders`' composite keys, recursing on failure.
///
/// Recovery stays job-agnostic: a fail-stop is diagnosed exactly as for a
/// solo job (nodes struck, quarantine counted), then the *batch* retries on
/// the surviving subcube — split in half when it held two or more jobs, so
/// a pathological interaction cannot pin every rider to the same fate.
/// `budget` is the attempt budget shared down the recursion; each level
/// consumes one attempt before splitting.
fn execute_batch<T>(
    inner: &Inner<T>,
    slot: usize,
    mut riders: Vec<BatchJob>,
    codec: CompositeCodec,
    budget: usize,
    avoid: &mut BTreeSet<u32>,
    backoff: &mut Backoff,
) where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    let config = &inner.config;
    if budget == 0 {
        for rider in riders {
            fail_rider(
                inner,
                rider.job,
                rider.attempts,
                rider.effort,
                JobError::Exhausted {
                    attempts: rider.attempts,
                    detections: rider.detections,
                },
            );
        }
        return;
    }
    let retrying = riders.iter().any(|r| r.attempts > 0);
    if retrying {
        let delay = backoff.next_delay();
        if delay > Duration::ZERO {
            std::thread::sleep(delay);
        }
        if inner.recovery.plan(avoid).is_err() {
            // Same fallback as the solo path: a timeout cascade implicated
            // more nodes than any single fault can; retry on what the
            // service still trusts.
            avoid.clear();
        }
    }
    let plan = match inner.recovery.plan(avoid) {
        Ok(plan) => plan,
        Err(healthy) => {
            for rider in riders {
                fail_rider(
                    inner,
                    rider.job,
                    rider.attempts,
                    rider.effort,
                    JobError::CubeExhausted {
                        healthy,
                        min_dim: config.min_dim,
                    },
                );
            }
            return;
        }
    };
    let nodes = 1usize << plan.dim;
    // Lexicographic composites: each job's keys become a contiguous,
    // internally ordered segment of the one sorted output. A post-split
    // batch of one runs its plain keys — no tag overhead, full key range.
    let keys = if riders.len() == 1 {
        riders[0].job.spec.keys.clone()
    } else {
        let segments: Vec<&[i32]> = riders.iter().map(|r| r.job.spec.keys.as_slice()).collect();
        match mux(codec, &segments) {
            Some(keys) => keys,
            None => {
                // Unreachable: compatibility was checked per job at batch
                // time against this same codec. Defense in depth.
                for rider in riders {
                    fail_rider(
                        inner,
                        rider.job,
                        rider.attempts,
                        rider.effort,
                        JobError::Runtime("batched keys no longer fit the composite codec".into()),
                    );
                }
                return;
            }
        }
    };
    if keys.len() % nodes != 0 {
        // Unreachable after the submit-side check (each rider's count
        // divides every power-of-two subcube, so any sum does too), kept as
        // defense in depth like the solo path's.
        for rider in riders {
            fail_rider(
                inner,
                rider.job,
                rider.attempts,
                rider.effort,
                JobError::Invalid(format!(
                    "{} batched keys do not divide over the degraded {nodes}-node cube",
                    keys.len()
                )),
            );
        }
        return;
    }
    let total_len = keys.len() as u64;
    let run_id = inner.next_run.fetch_add(1, Ordering::Relaxed) + 1;
    aoft_obs::global().attempts.inc();
    aoft_obs::emit(
        aoft_obs::Event::new("attempt_started")
            .job(riders[0].job.id.0)
            .attempt(riders[0].attempts as u32)
            .detail(format!(
                "run {run_id} on a {}-dim cube ({} coalesced job(s))",
                plan.dim,
                riders.len()
            )),
    );
    for rider in &mut riders {
        rider.attempts += 1;
    }
    let tag_base = (slot as u32 * config.dim) as u8;
    let transport =
        MappedTransport::new(Arc::clone(&inner.cache), plan.map.clone()).with_tag_base(tag_base);
    let builder = SortBuilder::new(config.algorithm)
        .keys(keys)
        .direction(riders[0].job.spec.direction)
        .nodes(nodes)
        .recv_timeout(config.recv_timeout)
        .job(run_id);
    match std::panic::catch_unwind(AssertUnwindSafe(|| builder.run_on(transport))) {
        Ok(Ok(report)) => {
            let lens: Vec<usize> = riders.iter().map(|r| r.job.spec.keys.len()).collect();
            let outputs = if riders.len() == 1 {
                vec![report.output().to_vec()]
            } else {
                match demux(codec, report.output(), &lens) {
                    Ok(outputs) => outputs,
                    Err(err) => {
                        // A verified sort whose output is not a permutation
                        // of the batch is corruption the predicates cannot
                        // see (they check order, not tags). Fail-stop loud,
                        // never hand a job another job's keys.
                        for rider in riders {
                            fail_rider(
                                inner,
                                rider.job,
                                rider.attempts,
                                rider.effort,
                                JobError::Runtime(format!("batch demux integrity check: {err}")),
                            );
                        }
                        return;
                    }
                }
            };
            let attempt_effort = report.metrics().effort();
            let mut merged = NodeMetrics::default();
            for node in &report.metrics().nodes {
                merged.merge(node);
            }
            merged.merge(&report.metrics().host);
            for (i, (rider, output)) in riders.into_iter().zip(outputs).enumerate() {
                let share =
                    effort_share(attempt_effort, rider.job.spec.keys.len() as u64, total_len);
                let effort = rider.effort + share;
                let job_report = JobReport {
                    id: rider.job.id,
                    output,
                    attempts: rider.attempts,
                    dim: plan.dim,
                    detections: rider.detections,
                    latency: rider.job.submitted_at.elapsed(),
                    metrics: merged,
                    effort,
                    trace: Trace::default(),
                };
                // The attempt's simulator counters are service-billed once
                // (first rider), not once per rider; every report still
                // carries the merged view.
                let sim = if i == 0 {
                    merged
                } else {
                    NodeMetrics::default()
                };
                inner.metrics.job_completed(
                    job_report.latency,
                    (rider.attempts - 1) as u64,
                    share,
                    &sim,
                );
                let _ = rider.job.reply.send(Ok(job_report));
            }
        }
        Ok(Err(SortError::Detected {
            reports,
            effort: wasted,
        })) => {
            aoft_obs::emit(
                aoft_obs::Event::new("attempt_failstop")
                    .job(riders[0].job.id.0)
                    .attempt((riders[0].attempts - 1) as u32)
                    .detail(format!(
                        "{} report(s) over {} coalesced job(s)",
                        reports.len(),
                        riders.len()
                    )),
            );
            digest_failure(inner, &reports, &plan, avoid);
            for rider in &mut riders {
                rider.effort += effort_share(wasted, rider.job.spec.keys.len() as u64, total_len);
                rider.detections.push(reports.clone());
            }
            if riders.len() >= 2 {
                // Re-split: each half retries as its own (smaller) batch on
                // the surviving subcube, sequentially, sharing the avoid
                // set and backoff schedule.
                let tail = riders.split_off(riders.len() / 2);
                execute_batch(inner, slot, riders, codec, budget - 1, avoid, backoff);
                execute_batch(inner, slot, tail, codec, budget - 1, avoid, backoff);
            } else {
                execute_batch(inner, slot, riders, codec, budget - 1, avoid, backoff);
            }
        }
        Ok(Err(err)) => {
            for rider in riders {
                fail_rider(
                    inner,
                    rider.job,
                    rider.attempts,
                    rider.effort,
                    JobError::Invalid(err.to_string()),
                );
            }
        }
        Err(payload) => {
            let msg = panic_message(payload);
            for rider in riders {
                fail_rider(
                    inner,
                    rider.job,
                    rider.attempts,
                    rider.effort,
                    JobError::Runtime(msg.clone()),
                );
            }
        }
    }
}

/// A rider's proportional share of one attempt's effort, by key count.
fn effort_share(attempt_effort: u64, rider_len: u64, total_len: u64) -> u64 {
    if total_len == 0 {
        return 0;
    }
    ((u128::from(attempt_effort) * u128::from(rider_len)) / u128::from(total_len)) as u64
}

/// Answers one batched job's reply channel with a loud failure and bills
/// the sink, mirroring the solo path's failure accounting.
fn fail_rider<T>(inner: &Inner<T>, job: QueuedJob, attempts: usize, effort: u64, err: JobError)
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    inner
        .metrics
        .job_failed(attempts.saturating_sub(1) as u64, effort);
    let _ = job.reply.send(Err(err));
}

/// Feeds one fail-stopped attempt to the service's fault memory: the job
/// avoids every implicated node on its own retries; nodes striking out
/// service-wide are quarantined and their cached links purged so no later
/// job dials them.
fn digest_failure<T>(
    inner: &Inner<T>,
    reports: &[ErrorReport],
    plan: &CubePlan,
    avoid: &mut BTreeSet<u32>,
) where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    let verdict = inner.recovery.record_failure(reports, plan);
    avoid.extend(verdict.suspects.iter().copied());
    for label in verdict.newly_quarantined {
        inner.cache.purge_node(label);
        aoft_obs::global().quarantine_events.inc();
        aoft_obs::emit(
            aoft_obs::Event::new("quarantine")
                .node(label)
                .detail("node struck out service-wide; cached links purged"),
        );
    }
    aoft_obs::global()
        .quarantined_nodes
        .set(inner.recovery.quarantined().len() as i64);
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        (*msg).to_string()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoft_faults::{FaultyTransport, LinkFault};
    use aoft_net::InProc;
    use aoft_sort::Algorithm;

    fn keys(n: usize, salt: i32) -> Vec<i32> {
        (0..n as i32).map(|i| (i * 37 + salt) % 101 - 50).collect()
    }

    fn sorted(mut v: Vec<i32>) -> Vec<i32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn serves_a_stream_of_jobs_in_process() {
        let service =
            SortService::start(SvcConfig::new(3).workers(2), InProc::new()).expect("start");
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let input = keys(16, i);
                let handle = service.submit(JobSpec::new(input.clone())).expect("admit");
                (input, handle)
            })
            .collect();
        for (input, handle) in handles {
            let report = handle.wait().expect("job completes");
            assert_eq!(report.output, sorted(input));
            assert_eq!(report.attempts, 1);
            assert_eq!(report.dim, 3);
        }
        let snap = service.metrics();
        assert_eq!(snap.jobs_completed, 8);
        assert_eq!(snap.jobs_failed, 0);
        assert_eq!(snap.retries, 0);
        assert!(snap.latency_p50 > Duration::ZERO);
        assert!(snap.quarantined.is_empty());
    }

    #[test]
    fn rejects_unservable_and_overflow_submissions() {
        let service =
            SortService::start(SvcConfig::new(2).queue_depth(1).workers(1), InProc::new())
                .expect("start");
        assert!(matches!(
            service.submit(JobSpec::new(vec![])),
            Err(SubmitError::Invalid(_))
        ));
        assert!(matches!(
            service.submit(JobSpec::new(vec![1, 2, 3])),
            Err(SubmitError::Invalid(_))
        ));
        // Saturate: the worker claims one job, the queue holds one more;
        // keep submitting until the bound trips.
        let mut admitted = Vec::new();
        let mut saw_backpressure = false;
        for i in 0..64 {
            match service.submit(JobSpec::new(keys(64, i))) {
                Ok(handle) => admitted.push(handle),
                Err(SubmitError::Backpressure { depth }) => {
                    assert_eq!(depth, 1);
                    saw_backpressure = true;
                    break;
                }
                Err(other) => panic!("unexpected rejection: {other}"),
            }
        }
        assert!(saw_backpressure, "64 instant submits must outrun 1 worker");
        for handle in admitted {
            handle.wait().expect("admitted jobs still complete");
        }
        assert!(service.metrics().jobs_rejected >= 3);
    }

    #[test]
    fn recovers_from_a_crashed_node_and_quarantines_it() {
        // Node 5 is fail-silent from its very first send. Every node
        // downstream of the dead links stalls within one stage, and the
        // starved recv deadlines land microseconds apart — which stalled
        // node reports first is scheduler roulette, so the diagnosis
        // implicates *some* dead link on the stalled wavefront, not
        // necessarily one incident to node 5 (attribution determinism for
        // synthetic reports lives in the recovery module's tests). The
        // service-level guarantee is what this test pins down: the job
        // fail-stops instead of lying, the implicated pair is quarantined,
        // and the retry completes correctly on a degraded cube.
        let faulty = FaultyTransport::new(InProc::new(), 0xdead).fault_sender(
            5,
            LinkFault {
                kill_after: Some(0),
                ..LinkFault::default()
            },
        );
        let config = SvcConfig::new(3)
            .max_attempts(4)
            .quarantine_after(1)
            .backoff(Duration::ZERO, Duration::ZERO)
            .recv_timeout(Duration::from_millis(300));
        let service = SortService::start(config, faulty).expect("start");

        let input = keys(32, 7);
        let report = service
            .submit(JobSpec::new(input.clone()))
            .expect("admit")
            .wait()
            .expect("job recovers");
        assert_eq!(report.output, sorted(input), "never silently wrong");
        assert!(report.recovered(), "first attempt must fail-stop");
        assert!(report.dim < 3, "retry runs degraded");
        assert!(
            report.effort > report.metrics.effort(),
            "effort bills the fail-stopped attempt on top of the successful one"
        );
        let quarantined = service.quarantined();
        assert!(
            !quarantined.is_empty(),
            "the fail-stop must quarantine the implicated link endpoints"
        );
        assert!(
            quarantined.iter().all(|&n| n < 8),
            "quarantine holds physical cube labels, got {quarantined:?}"
        );

        // Follow-up jobs avoid the quarantined node from the start.
        let input = keys(32, 11);
        let report = service
            .submit(JobSpec::new(input.clone()))
            .expect("admit")
            .wait()
            .expect("follow-up completes");
        assert_eq!(report.output, sorted(input));
        assert_eq!(report.attempts, 1, "no re-detection once quarantined");

        let snap = service.metrics();
        assert_eq!(snap.jobs_completed, 2);
        assert!(snap.retries >= 1);
        assert_eq!(snap.recovered_jobs, 1);
        assert!(snap.effort > 0, "service-wide effort accumulates");
    }

    #[test]
    fn cube_exhaustion_fails_loudly() {
        // Every node's links die immediately; min_dim 2 leaves no fallback.
        let mut faulty = FaultyTransport::new(InProc::new(), 1);
        for node in 0..4 {
            faulty = faulty.fault_sender(
                node,
                LinkFault {
                    kill_after: Some(0),
                    ..LinkFault::default()
                },
            );
        }
        let config = SvcConfig::new(2)
            .min_dim(2)
            .max_attempts(3)
            .quarantine_after(1)
            .backoff(Duration::ZERO, Duration::ZERO)
            .recv_timeout(Duration::from_millis(200));
        let service = SortService::start(config, faulty).expect("start");
        let err = service
            .submit(JobSpec::new(keys(8, 3)))
            .expect("admit")
            .wait()
            .expect_err("no healthy cube can remain");
        assert!(
            matches!(
                err,
                JobError::CubeExhausted { .. } | JobError::Exhausted { .. }
            ),
            "loud failure, got {err}"
        );
        assert_eq!(service.metrics().jobs_failed, 1);
    }

    #[test]
    fn shutdown_answers_queued_jobs_with_stopped() {
        let service = SortService::start(
            SvcConfig::new(4).algorithm(Algorithm::HostSequential),
            InProc::new(),
        )
        .expect("start");
        let handle = service.submit(JobSpec::new(keys(16, 0))).expect("admit");
        // The job may or may not start before shutdown; either way the
        // handle resolves — to a report or to Stopped, never a hang.
        service.shutdown();
        match handle.wait() {
            Ok(report) => assert_eq!(report.output, sorted(keys(16, 0))),
            Err(err) => assert_eq!(err, JobError::Stopped),
        }
    }
}
