//! Micro-batching at the admission door: one cube attempt answering many
//! jobs.
//!
//! ```text
//! cargo run --release --example batched_service
//! ```
//!
//! A single-worker `SortService` with `batch_max = 16` takes a burst of 64
//! jobs over the nonblocking reactor backend. The worker's batcher coalesces
//! compatible queued jobs into composite-key attempts — each job's keys
//! tagged with its batch sequence number, so one lexicographic `S_FT` run
//! sorts every job's keys into its own contiguous segment and a demux splits
//! the output back per job. The per-hop latency of the ~30-hop d=3 schedule
//! is paid once per *batch* instead of once per *job*.
//!
//! The example asserts the two properties the batching PR promises: at
//! least one flush actually coalesced multiple jobs, and not one of the 64
//! answers is silently wrong.

mod common;

use std::time::{Duration, Instant};

use aoft::svc::{JobSpec, SortService, SvcConfig};
use common::{demo_keys, loopback_reactor_cluster, sorted};

const JOBS: u64 = 64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SvcConfig::new(3)
        .workers(1)
        .batch_max(16)
        .batch_flush(Duration::from_millis(2))
        .recv_timeout(Duration::from_millis(800));
    let service = SortService::start(config, loopback_reactor_cluster(8)?)?;

    println!("burst-submitting {JOBS} jobs into one worker (batch_max = 16)\n");
    let started = Instant::now();
    let jobs: Vec<_> = (0..JOBS)
        .map(|index| {
            let keys = demo_keys(64, index as i64);
            let handle = service.submit(JobSpec::new(keys.clone()))?;
            Ok::<_, Box<dyn std::error::Error>>((keys, handle))
        })
        .collect::<Result<_, _>>()?;

    // A hung batch must fail the run loudly, not stall CI: every wait sits
    // under one wall-clock bound for the whole burst.
    let deadline = started + Duration::from_secs(60);
    for (index, (keys, handle)) in jobs.into_iter().enumerate() {
        assert!(
            Instant::now() < deadline,
            "burst exceeded its 60s bound at job {index}"
        );
        let report = handle.wait()?;
        assert_eq!(
            report.output,
            sorted(&keys),
            "job {index}: silently wrong output"
        );
    }
    let elapsed = started.elapsed();

    let metrics = service.metrics();
    assert_eq!(metrics.jobs_completed, JOBS, "every job must complete");
    assert!(
        metrics.jobs_coalesced > 0,
        "a {JOBS}-job burst into one worker must coalesce at least once"
    );
    assert!(
        metrics.batches_flushed < JOBS,
        "coalescing must flush fewer batches than jobs"
    );
    println!(
        "{JOBS} jobs in {elapsed:.1?}: {} batches, {} jobs shared an attempt",
        metrics.batches_flushed, metrics.jobs_coalesced
    );
    println!(
        "amortization: {:.1} jobs per cube attempt on average",
        JOBS as f64 / metrics.batches_flushed as f64
    );
    println!("zero silent corruption across the burst — batching changed the ride, not the answer");

    service.shutdown();
    Ok(())
}
