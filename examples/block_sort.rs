//! Block bitonic sort/merge (Section 5's extension, Figure 8): each node
//! holds `m` keys, compare-exchange becomes merge-split, and the host
//! baseline has to move and sort all `N·m` keys itself.
//!
//! ```text
//! cargo run --example block_sort
//! ```

mod common;

use aoft::sort::{Algorithm, SortBuilder};
use common::{demo_keys, sorted};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes = 16usize;
    println!("N = {nodes} nodes, sweeping keys-per-node m:\n");
    println!(
        "{:>6} {:>10} {:>14} {:>14} {:>9}",
        "m", "keys", "S_FT ticks", "host ticks", "ratio"
    );

    for m in [1usize, 4, 16, 64, 256] {
        let keys = demo_keys(nodes * m, 3);
        let expected = sorted(&keys);

        let sft = SortBuilder::new(Algorithm::FaultTolerant)
            .keys(keys.clone())
            .nodes(nodes)
            .run()?;
        assert_eq!(sft.output(), expected);

        let host = SortBuilder::new(Algorithm::HostSequential)
            .keys(keys)
            .nodes(nodes)
            .run()?;
        assert_eq!(host.output(), expected);

        let ratio = sft.elapsed().as_ticks_f64() / host.elapsed().as_ticks_f64();
        println!(
            "{m:>6} {:>10} {:>14} {:>14} {ratio:>8.2}x",
            nodes * m,
            sft.elapsed().to_string(),
            host.elapsed().to_string(),
        );
    }
    println!(
        "\nAs m grows the ratio drops: the host pays N·m transfer plus \
         N·m·log(N·m) comparisons,\nwhile the nodes split the work — the \
         'right shift' of the paper's Figure 8."
    );
    Ok(())
}
