//! A live Byzantine node on a real TCP cube, caught and quarantined.
//!
//! ```text
//! cargo run --example byzantine_cluster
//! ```
//!
//! A d=3 cube runs over loopback TCP with every frame crossing a real
//! socket. Node P0 is *two-faced* (Definition 3): from the first send
//! onward, each of its outgoing links carries an independently-seeded
//! semantic skew — valid CRC, well-formed `Msg`, different story per
//! neighbor. The `ByzantineTransport` interposer mutates frames at the
//! codec boundary, so nothing below the predicate layer can notice.
//!
//! What the run demonstrates, in order:
//!
//! 1. the consistency predicate Φ_C catches a skewed echo — an entry the
//!    checker itself transmitted to P0 one step earlier came back changed,
//!    so the evidence travelled only `checker → P0 → checker` and names P0
//!    (Lemma 6), not a bystander;
//! 2. the service's recovery loop treats that as equivocation proof and
//!    quarantines P0 directly;
//! 3. the job retries on the surviving d=2 subcube and answers correctly —
//!    fail-stop, never silently wrong (Theorem 3).

mod common;

use std::time::Duration;

use aoft::adv::ByzantineTransport;
use aoft::faults::{FaultKind, FaultPlan, Trigger};
use aoft::hypercube::NodeId;
use aoft::svc::{JobSpec, SortService, SvcConfig};
use common::{demo_keys, loopback_cluster, sorted};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const TWO_FACED: u32 = 0;
    let plan = FaultPlan::new().with_fault(
        NodeId::new(TWO_FACED),
        FaultKind::TwoFaced,
        Trigger::always(),
        0xE0_0D,
    );
    let transport = ByzantineTransport::new(loopback_cluster(8)?, plan);

    let config = SvcConfig::new(3)
        .max_attempts(4)
        .quarantine_after(2)
        .min_dim(2)
        .backoff(Duration::from_millis(5), Duration::from_millis(40))
        .recv_timeout(Duration::from_millis(800));
    let service = SortService::start(config, transport)?;

    println!("d=3 loopback TCP cube; P{TWO_FACED} is two-faced from the first frame\n");
    let keys = demo_keys(16, 0xB1);
    let handle = service.submit(JobSpec::new(keys.clone()))?;
    let report = handle.wait()?;

    assert_eq!(report.output, sorted(&keys), "never silently wrong");
    for (attempt, reports) in report.detections.iter().enumerate() {
        for detection in reports {
            println!("attempt {}: {detection}", attempt + 1);
        }
    }
    let quarantined = service.quarantined();
    assert_eq!(
        quarantined,
        vec![TWO_FACED],
        "the equivocator itself is quarantined, no bystanders"
    );
    println!(
        "\nP{TWO_FACED} quarantined on Φ_C evidence; correct answer after {} attempt(s) \
         on a d={} cube, {} ticks of effort",
        report.attempts, report.dim, report.effort
    );

    service.shutdown();
    Ok(())
}
