//! Shared bring-up helpers for the examples.
//!
//! Each example is its own crate rooted at `examples/<name>.rs`; they all
//! `mod common;` this file instead of repeating the cube bring-up
//! boilerplate (deterministic demo keys, loopback TCP clusters, the
//! standard `S_FT` builder).

// Every example uses a subset of these helpers; the rest would otherwise
// trip dead-code warnings per example crate.
#![allow(dead_code)]

use std::time::Duration;

use aoft::sim::{ReactorConfig, ReactorTransport, TcpConfig, TcpTransport};
use aoft::sort::{Algorithm, Key, SortBuilder};

/// Deterministic, scattered demo keys: a multiplicative hash over `0..n`,
/// folded into `-500..500`. `salt` varies the sequence between runs that
/// should not share data.
pub fn demo_keys(n: usize, salt: i64) -> Vec<Key> {
    (0..n as i64)
        .map(|x| (((x + salt).wrapping_mul(2_654_435_761) % 1000) - 500) as Key)
        .collect()
}

/// The expected output: `keys`, ascending.
pub fn sorted(keys: &[Key]) -> Vec<Key> {
    let mut expected = keys.to_vec();
    expected.sort_unstable();
    expected
}

/// Binds a fresh loopback TCP transport and maps all `nodes` labels to its
/// own listener — a whole cube in one process, every compare-exchange
/// crossing a real socket. In the multi-process case each label's
/// `set_peer` would point at a different machine instead.
pub fn loopback_cluster(nodes: u32) -> Result<TcpTransport, Box<dyn std::error::Error>> {
    let transport = TcpTransport::bind(TcpConfig::default())?;
    let addr = transport.local_addr();
    for label in 0..nodes {
        transport.set_peer(label, addr);
    }
    Ok(transport)
}

/// Like [`loopback_cluster`], but over the nonblocking reactor backend:
/// the whole cube's links are multiplexed onto a fixed pool of reactor
/// threads instead of two OS threads per link.
pub fn loopback_reactor_cluster(
    nodes: u32,
) -> Result<ReactorTransport, Box<dyn std::error::Error>> {
    let transport = ReactorTransport::bind(ReactorConfig::default())?;
    let addr = transport.local_addr();
    for label in 0..nodes {
        transport.set_peer(label, addr);
    }
    Ok(transport)
}

/// The standard fail-stop sorter: `S_FT` over `nodes` nodes with a receive
/// timeout tight enough for a demo but tolerant of loaded CI machines.
pub fn sft_builder(keys: Vec<Key>, nodes: usize) -> SortBuilder {
    SortBuilder::new(Algorithm::FaultTolerant)
        .keys(keys)
        .nodes(nodes)
        .recv_timeout(Duration::from_millis(800))
}
