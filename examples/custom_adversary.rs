//! Writing your own Byzantine adversary.
//!
//! The built-in fault classes live in `aoft::faults`; anything else is one
//! trait impl away. This example builds a *targeted* adversary that swaps
//! the two data values it relays during one specific exchange step — a
//! minimal, surgical fault — and shows the feasibility predicate catching
//! the resulting duplicate/loss at the next stage boundary.
//!
//! ```text
//! cargo run --example custom_adversary
//! ```

use aoft::hypercube::Hypercube;
use aoft::sim::{Action, Adversary, AdversarySet, Engine, SendContext, SimConfig};
use aoft::sort::{block, Block, Msg, SftProgram};

/// Replaces the data operand of one specific send with a forged block,
/// leaving the piggybacked sequence untouched — the checks must correlate
/// the two to notice.
struct ForgeOnce {
    at_seq: u64,
    forged: Vec<i32>,
}

impl Adversary<Msg> for ForgeOnce {
    fn intercept(&mut self, ctx: &SendContext, payload: Msg) -> Action<Msg> {
        if ctx.seq != self.at_seq {
            return Action::Deliver(payload);
        }
        match payload {
            Msg::Tagged { lbs, .. } => Action::Deliver(Msg::Tagged {
                data: Block::from_wire(self.forged.clone()),
                lbs,
            }),
            other => Action::Deliver(other),
        }
    }

    fn label(&self) -> &str {
        "forge-once"
    }
}

fn main() {
    let keys: Vec<i32> = (0..16).map(|x| (x * 53 + 11) % 101).collect();
    let engine = Engine::new(
        Hypercube::new(4).expect("small cube"),
        SimConfig::new().recv_timeout(std::time::Duration::from_millis(500)),
    );

    let mut adversaries = AdversarySet::honest(16);
    adversaries.install(
        aoft::hypercube::NodeId::new(9),
        Box::new(ForgeOnce {
            at_seq: 2,            // third send: a stage-1 exchange
            forged: vec![-12345], // sorted-looking but foreign value
        }),
    );

    let program = SftProgram::new(block::distribute(&keys, 16));
    let report = engine.run_faulty(&program, adversaries);

    assert!(report.is_fail_stop(), "the forged operand must be caught");
    println!("machine fail-stopped as designed; diagnostics delivered to the host:");
    for r in report.reports() {
        println!("  {r}");
    }
    println!(
        "\n(the forged value is locally plausible — it is only the stage-boundary\n\
         feasibility check Φ_F, comparing against the piggybacked previous\n\
         sequence, that can tell it was never part of the input)"
    );
}
