//! Fault injection: watch every Byzantine fault class get caught.
//!
//! For each fault class of Definition 3, inject a fault into a random node
//! of a 16-node machine and run `S_FT`: the run must either produce a
//! correct sort (the fault was absorbed) or fail-stop with a diagnostic —
//! never a silent wrong answer. `S_NR` under the same faults shows why the
//! checking matters.
//!
//! ```text
//! cargo run --example fault_injection
//! ```

mod common;

use aoft::faults::{FaultKind, FaultPlan, Trigger};
use aoft::hypercube::NodeId;
use aoft::sort::{Algorithm, SortBuilder, SortError};
use common::{demo_keys, sorted};

fn main() {
    let keys = demo_keys(16, 2);
    let expected = sorted(&keys);

    println!("=== S_FT under single Byzantine faults ===");
    for kind in FaultKind::ALL {
        let plan = FaultPlan::new().with_fault(
            NodeId::new(5),
            kind,
            Trigger::from_seq(1), // honour assumption 5: first exchange is clean
            0xFA017,
        );
        let result = SortBuilder::new(Algorithm::FaultTolerant)
            .keys(keys.clone())
            .fault_plan(plan)
            .recv_timeout(std::time::Duration::from_millis(400))
            .run();
        match result {
            Ok(report) => {
                assert_eq!(report.output(), expected, "Theorem 3 would be violated!");
                println!("{kind:<18} -> completed correctly (fault absorbed)");
            }
            Err(SortError::Detected { reports, .. }) => {
                let first = &reports[0];
                let diagnosis = aoft::sort::diagnosis::diagnose(&reports, 4);
                println!(
                    "{kind:<18} -> FAIL-STOP: detected by {} ({}); diagnosis: {}",
                    first.detector, first.detail, diagnosis
                );
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    println!("\n=== S_NR (no checking) under the same faults ===");
    for kind in FaultKind::ALL {
        let plan = FaultPlan::new().with_fault(NodeId::new(5), kind, Trigger::from_seq(1), 0xFA017);
        let result = SortBuilder::new(Algorithm::NonRedundant)
            .keys(keys.clone())
            .fault_plan(plan)
            .recv_timeout(std::time::Duration::from_millis(400))
            .run();
        match result {
            Ok(report) if report.output() == expected => {
                println!("{kind:<18} -> lucky: output happened to stay correct");
            }
            Ok(_) => println!("{kind:<18} -> SILENTLY WRONG output (!)"),
            Err(_) => println!("{kind:<18} -> hung/failed without a result"),
        }
    }
}
