//! A fleet of sort cubes over reactor TCP, surviving a cube-killing fault.
//!
//! ```text
//! cargo run --example fleet
//! ```
//!
//! Three d=3 cubes — two active, one standby spare — run behind a
//! [`FleetRouter`], every cube on its own loopback *reactor* TCP transport
//! (nonblocking sockets on a fixed thread pool, not two threads per link).
//! Mid-stream, node 5 of cube 1 goes permanently fail-silent. The cube's
//! own attempt budget is 1, so the in-flight job fails *loudly* at the cube
//! level; the fleet layer then takes over:
//!
//! 1. the failed job **fails over** — the router resubmits it to a healthy
//!    cube, where it completes correctly;
//! 2. cube 1's diagnosis quarantines the implicated node, so the router
//!    marks the cube **degraded** and deprioritizes it;
//! 3. the standby spare is **promoted** to keep two healthy cubes active;
//! 4. every later job routes around the shrunken cube.
//!
//! Per the paper's fail-stop discipline, no job is ever answered with a
//! silently wrong result — the fleet's only visible symptoms are one
//! failover and a changed routing distribution.

mod common;

use std::time::Duration;

use aoft::faults::{FaultyTransport, LinkFault};
use aoft::svc::{FleetConfig, FleetRouter, JobSpec, SvcConfig};
use common::{demo_keys, loopback_reactor_cluster, sorted};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One attempt per job: a cube-level fault is not retried inside the
    // cube, it surfaces immediately so the *fleet* handles it. Quarantine
    // on the first strike makes the cube's degradation visible at once.
    let cube = SvcConfig::new(3)
        .max_attempts(1)
        .quarantine_after(1)
        .recv_timeout(Duration::from_millis(800));
    let config = FleetConfig::new(cube, 2).spares(1);

    // Every cube gets its own reactor transport; cube 1's is additionally
    // wrapped with a fail-silent kill on node 5 after 10 frames per link —
    // a few jobs in, mid-stream (a d=3 job puts ~3 frames on the busiest
    // outgoing link of a node).
    let router = FleetRouter::start(config, |i| {
        let transport = loopback_reactor_cluster(8)
            .map_err(|e| aoft::net::NetError::Io(format!("cube {i} bring-up: {e}")))?;
        let mut faulty = FaultyTransport::new(transport, 0xf1ee7 + i as u64);
        if i == 1 {
            faulty = faulty.fault_sender(
                5,
                LinkFault {
                    kill_after: Some(10),
                    ..LinkFault::default()
                },
            );
        }
        Ok(faulty)
    })?;

    println!("fleet: 2 active d=3 cubes + 1 spare, reactor TCP loopback");
    println!("cube 1 node 5 dies fail-silent mid-stream\n");

    let mut failovers = 0usize;
    for index in 0..24u64 {
        let keys = demo_keys(32, index as i64);
        let handle = router.submit(JobSpec::new(keys.clone()))?;
        let cube = handle.cube();
        let report = handle.wait()?;
        // Zero silent corruption: every answer is verified sorted output.
        assert_eq!(report.report.output, sorted(&keys), "never silently wrong");
        if report.reroutes > 0 {
            failovers += report.reroutes;
            println!(
                "job {index:2}: FAILED OVER cube {cube} → cube {} \
                 ({} reroute(s), {:?})",
                report.cube, report.reroutes, report.report.latency
            );
        } else {
            println!(
                "job {index:2}: ok on cube {} in {:?}",
                report.cube, report.report.latency
            );
        }
    }

    let metrics = router.metrics();
    println!(
        "\nfleet: {} cubes ({} active, {} spare), degraded {:?}",
        metrics.cubes, metrics.active, metrics.spares, metrics.degraded
    );
    println!(
        "routing: {:?} jobs/cube, {} failover(s), {} spare(s) promoted",
        metrics.jobs_routed, metrics.failovers, metrics.spares_promoted
    );

    // The mid-stream kill must have surfaced as fleet-level recovery:
    assert!(failovers >= 1, "the killed cube must cause a failover");
    assert!(
        metrics.degraded.contains(&1),
        "cube 1 must be quarantine-shrunken and deprioritized, got {:?}",
        metrics.degraded
    );
    assert!(
        metrics.spares_promoted >= 1,
        "the spare must join the rotation when cube 1 degrades"
    );
    // Deprioritization: the healthy cubes absorbed the rest of the stream —
    // nothing routed to the degraded cube after its strike beyond the jobs
    // already counted when it was healthy.
    let per_cube_completed: Vec<u64> = metrics.per_cube.iter().map(|m| m.jobs_completed).collect();
    println!("completed per cube: {per_cube_completed:?}");
    assert!(
        metrics.jobs_routed[0] + metrics.jobs_routed[2] > metrics.jobs_routed[1],
        "healthy cubes must carry most of the stream: {:?}",
        metrics.jobs_routed
    );

    // The fleet's whole story is on the process registry.
    let text = aoft::obs::global().render_prometheus();
    for family in [
        "aoft_fleet_cubes",
        "aoft_fleet_jobs_routed_total",
        "aoft_fleet_cube_health",
        "aoft_fleet_failovers_total",
        "aoft_fleet_spares_promoted_total",
        "aoft_reactor_threads",
        "aoft_reactor_wakeups_total",
    ] {
        assert!(text.contains(family), "missing {family} in scrape");
    }
    println!("\nfleet + reactor families present on the metrics scrape ✓");

    router.shutdown();
    println!("fleet survived a mid-stream cube fault: failover, quarantine, spare promotion — zero silent corruption");
    Ok(())
}
