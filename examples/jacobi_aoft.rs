//! The application-oriented fault tolerance paradigm on a *different*
//! problem: distributed Jacobi relaxation.
//!
//! The paper presents sorting as the third application of the constraint-
//! predicate paradigm, after matrix iterative solution and relaxation
//! labeling — "all that is necessary for successful algorithm development is
//! a sufficient set of natural problem constraints." This example shows the
//! substrate is reusable beyond sorting: a 1-D Laplace solver on the
//! hypercube's Gray-code ring, guarded by the same three metrics:
//!
//! * **progress** — the residual never increases (Jacobi on Laplace with
//!   Dirichlet boundaries is a max-norm contraction);
//! * **feasibility** — every iterate stays within the boundary values (the
//!   discrete maximum principle, the problem's natural constraint);
//! * **consistency** — each message piggybacks an echo of the value last
//!   received from that neighbor, so a corrupted link is caught one
//!   iteration later.
//!
//! ```text
//! cargo run --example jacobi_aoft
//! ```

use aoft::faults::Corruptible;
use aoft::hypercube::{gray, Hypercube, NodeId};
use aoft::sim::{
    Action, Adversary, AdversarySet, Engine, NodeCtx, Payload, Program, SendContext, SimConfig,
    SimError,
};
use rand::Rng;

const DIM: u32 = 4; // 16 unknowns on the ring
const ITERATIONS: u32 = 60;
const LEFT_BOUNDARY: f64 = 0.0;
const RIGHT_BOUNDARY: f64 = 15.0;

#[derive(Debug, Clone, Copy, PartialEq)]
struct JacobiMsg {
    /// The sender's current iterate.
    value: f64,
    /// Echo of the value last received *from the destination* — the
    /// consistency handle.
    echo: f64,
}

impl Payload for JacobiMsg {
    fn wire_size(&self) -> usize {
        4 // two f64s
    }
}

impl Corruptible for JacobiMsg {
    fn corrupt<R: Rng + ?Sized>(&self, rng: &mut R) -> Self {
        JacobiMsg {
            value: self.value + rng.gen_range(10.0..100.0),
            echo: self.echo,
        }
    }
}

struct JacobiProgram {
    ring: Vec<NodeId>,
}

impl JacobiProgram {
    fn ring_position(&self, node: NodeId) -> usize {
        self.ring
            .iter()
            .position(|&n| n == node)
            .expect("every node is on the ring")
    }
}

impl Program<JacobiMsg> for JacobiProgram {
    type Output = f64;

    fn run(&self, ctx: &mut NodeCtx<'_, JacobiMsg>) -> Result<f64, SimError> {
        let pos = self.ring_position(ctx.id());
        let n = self.ring.len();
        let (lo, hi) = (
            LEFT_BOUNDARY.min(RIGHT_BOUNDARY),
            LEFT_BOUNDARY.max(RIGHT_BOUNDARY),
        );

        // Interior nodes start at an arbitrary feasible value; the two ends
        // are the fixed boundary.
        let mut x = match pos {
            0 => LEFT_BOUNDARY,
            p if p == n - 1 => RIGHT_BOUNDARY,
            _ => (lo + hi) / 2.0,
        };
        let left = (pos > 0).then(|| self.ring[pos - 1]);
        let right = (pos < n - 1).then(|| self.ring[pos + 1]);
        // Consistency bookkeeping: what I sent last round (neighbors echo
        // it back one round later on the left link, immediately on the
        // right link), and what each neighbor said last round (for the
        // progress bound).
        let mut sent_prev = f64::NAN;
        let mut last_from_left = f64::NAN;
        let mut last_from_right = f64::NAN;

        for iter in 0..ITERATIONS {
            let sending = x;
            let mut heard_left = None;
            let mut heard_right = None;
            if let Some(l) = left {
                // Left neighbor initiates; we reply with an immediate echo
                // of the value it just sent.
                let got = ctx.recv_from(l)?;
                ctx.send(
                    l,
                    JacobiMsg {
                        value: sending,
                        echo: got.value,
                    },
                )?;
                // Its echo field carries what we sent it *last* round.
                if iter > 0 && (got.echo - sent_prev).abs() > 1e-9 {
                    ctx.signal_error(3, format!("Φ_C: {l} echoed {} ≠ {sent_prev}", got.echo));
                    return Err(SimError::Cancelled);
                }
                heard_left = Some(got.value);
            }
            if let Some(r) = right {
                // We initiate toward the right; the reply echoes this
                // round's value immediately.
                ctx.send(
                    r,
                    JacobiMsg {
                        value: sending,
                        echo: last_from_right,
                    },
                )?;
                let got = ctx.recv_from(r)?;
                if (got.echo - sending).abs() > 1e-9 {
                    ctx.signal_error(3, format!("Φ_C: {r} echoed {} ≠ {sending}", got.echo));
                    return Err(SimError::Cancelled);
                }
                heard_right = Some(got.value);
            }

            // Feasibility: the maximum principle bounds every iterate.
            for (src, v) in [(left, heard_left), (right, heard_right)] {
                if let (Some(src), Some(v)) = (src, v) {
                    if !(lo..=hi).contains(&v) {
                        ctx.signal_error(2, format!("Φ_F: {src} sent infeasible {v}"));
                        return Err(SimError::Cancelled);
                    }
                }
            }

            // Progress: my step is the average of the neighbors' previous
            // steps, so it is bounded by the larger of their observed
            // changes — the local form of Jacobi's max-norm contraction.
            if let (Some(l), Some(r)) = (heard_left, heard_right) {
                let next = (l + r) / 2.0;
                if iter > 0 {
                    let bound = (l - last_from_left).abs().max((r - last_from_right).abs());
                    let step = (next - x).abs();
                    if step > bound + 1e-9 {
                        ctx.signal_error(
                            1,
                            format!("Φ_P: step {step} exceeds contraction bound {bound}"),
                        );
                        return Err(SimError::Cancelled);
                    }
                }
                x = next;
            }
            if let Some(v) = heard_left {
                last_from_left = v;
            }
            if let Some(v) = heard_right {
                last_from_right = v;
            }
            sent_prev = sending;
            ctx.charge_compares(6);
        }
        Ok(x)
    }
}

/// The ring-position order fix for the exchange protocol: even ring
/// positions initiate toward the right, odd ones toward the left — encoded
/// above as "receive from left first, send to right first", which works
/// because position 0 has no left neighbor.
fn main() {
    let cube = Hypercube::new(DIM).expect("small cube");
    let ring = gray::ring_embedding(DIM);
    let engine = Engine::new(
        cube,
        SimConfig::new().recv_timeout(std::time::Duration::from_millis(500)),
    );
    let program = JacobiProgram { ring: ring.clone() };

    // Honest run: converges to the linear interpolation of the boundaries.
    let report = engine.run(&program);
    let outputs = report.outputs().expect("honest run completes");
    println!("Jacobi solution (ring order), after {ITERATIONS} iterations:");
    for (pos, node) in ring.iter().enumerate() {
        let exact =
            LEFT_BOUNDARY + (RIGHT_BOUNDARY - LEFT_BOUNDARY) * pos as f64 / (ring.len() - 1) as f64;
        let got = outputs[node.index()];
        println!("  pos {pos:>2} ({node}): {got:>7.3}   exact {exact:>7.3}");
        assert!(
            (got - exact).abs() < 0.5,
            "convergence within tolerance at pos {pos}"
        );
    }

    // Faulty run: a node starts sending infeasible values mid-solve.
    struct Blowup;
    impl Adversary<JacobiMsg> for Blowup {
        fn intercept(&mut self, ctx: &SendContext, payload: JacobiMsg) -> Action<JacobiMsg> {
            if ctx.seq >= 20 {
                Action::Deliver(JacobiMsg {
                    value: 1.0e6,
                    ..payload
                })
            } else {
                Action::Deliver(payload)
            }
        }
    }
    let mut advs = AdversarySet::honest(ring.len());
    advs.install(ring[5], Box::new(Blowup));
    let faulty = engine.run_faulty(&program, advs);
    assert!(faulty.is_fail_stop(), "the blowup must be caught");
    println!("\nwith a faulty node injected: {}", faulty.reports()[0]);
    println!("the same three-metric paradigm, a completely different problem.");
}
