//! A multi-process fleet: cube hosts as real child processes, jobs routed
//! over real sockets, recovery and quarantine crossing the process
//! boundary.
//!
//! ```text
//! cargo run --example multiproc_fleet
//! ```
//!
//! The parent binds one multiplexed control transport (`aoft::net::
//! MuxTransport`) and re-execs itself twice as `--cube-host` children.
//! Each child brings up a complete d=3 [`aoft::svc::SortService`] cube on
//! its own loopback transport, dials the parent, and serves jobs through
//! [`aoft::svc::CubeHost`]. Child 101 is sabotaged: its node 5 goes
//! permanently fail-silent a few frames into its first job, and with an
//! attempt budget of 1 that job fails *loudly* back to the parent.
//!
//! The parent's [`aoft::svc::RemoteFleet`] then does what the paper asks
//! of "the system": it fails the job over to the healthy child, keeps
//! routing, and — because child 101 quarantines the dead node on the
//! first strike — watches the sabotaged child come back in *degraded*
//! mode, reporting its quarantine across the process boundary in every
//! subsequent answer. Every output is verified sorted: one failover, one
//! quarantined node, zero silent corruption.
//!
//! Used by CI's `mux-quick` job as the end-to-end multi-process gate.

mod common;

use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use aoft::faults::{FaultyTransport, LinkFault};
use aoft::net::{MuxConfig, MuxTransport};
use aoft::svc::{CubeHost, RemoteFleet, SvcConfig};
use common::sorted;

const HEALTHY_CHILD: u32 = 100;
const FAULTY_CHILD: u32 = 101;
const JOBS: usize = 24;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 4 && args[1] == "--cube-host" {
        let label: u32 = args[2].parse()?;
        let parent: SocketAddr = args[3].parse()?;
        let kill_node: Option<u32> = match args.get(4).map(String::as_str) {
            Some("--kill-node") => Some(args[5].parse()?),
            _ => None,
        };
        return cube_host(label, parent, kill_node);
    }
    parent()
}

/// Child mode: one complete cube on a loopback mux transport, served to
/// the parent until the parent closes the session.
fn cube_host(
    label: u32,
    parent: SocketAddr,
    kill_node: Option<u32>,
) -> Result<(), Box<dyn std::error::Error>> {
    let cube = MuxTransport::bind(MuxConfig::default())?;
    let addr = cube.local_addr();
    for node in 0..8 {
        cube.set_peer(node, addr);
    }
    // Attempt budget 1 makes a cube-level fault surface immediately as a
    // loud `Failed` (the fleet handles it); quarantine on the first strike
    // means the next job already runs degraded around the dead node.
    let svc = SvcConfig::new(3)
        .max_attempts(1)
        .quarantine_after(1)
        .recv_timeout(Duration::from_millis(800));
    let mut faulty = FaultyTransport::new(cube, 0xBEEF + u64::from(label));
    if let Some(node) = kill_node {
        faulty = faulty.fault_sender(
            node,
            LinkFault {
                kill_after: Some(8),
                ..LinkFault::default()
            },
        );
    }
    CubeHost::serve(label, parent, svc, faulty)?;
    Ok(())
}

fn spawn_child(label: u32, parent: SocketAddr, kill_node: Option<u32>) -> std::io::Result<Child> {
    let mut cmd = Command::new(std::env::current_exe()?);
    cmd.arg("--cube-host")
        .arg(label.to_string())
        .arg(parent.to_string())
        .stdin(Stdio::null());
    if let Some(node) = kill_node {
        cmd.arg("--kill-node").arg(node.to_string());
    }
    cmd.spawn()
}

fn parent() -> Result<(), Box<dyn std::error::Error>> {
    let control = MuxTransport::bind(MuxConfig::default())?;
    let addr = control.local_addr();
    println!("parent: control plane on {addr}, spawning 2 cube hosts");

    let mut children = vec![
        spawn_child(HEALTHY_CHILD, addr, None)?,
        spawn_child(FAULTY_CHILD, addr, Some(5))?,
    ];

    let mut fleet = RemoteFleet::connect(
        control,
        &[HEALTHY_CHILD, FAULTY_CHILD],
        Duration::from_secs(30),
        Duration::from_secs(60),
    )?;
    println!("parent: both children dialed in");

    let mut failures = Vec::new();
    let mut recovered_degraded = 0usize;
    for job in 0..JOBS {
        let keys: Vec<i32> = (0..32i32)
            .map(|x| (x + job as i32).wrapping_mul(-61) % 200)
            .collect();
        let expected = sorted(&keys);
        let report = fleet.submit(keys)?;
        if report.output != expected {
            failures.push(job);
        }
        if report.cube == FAULTY_CHILD && report.reroutes == 0 && fleet.failovers() > 0 {
            recovered_degraded += 1;
        }
        println!(
            "job {job:2}: cube {} attempts {} reroutes {} {}",
            report.cube,
            report.attempts,
            report.reroutes,
            if report.output == expected {
                "sorted"
            } else {
                "CORRUPT"
            }
        );
    }

    let failovers = fleet.failovers();
    let quarantine = fleet.quarantine_map();
    println!("parent: {failovers} failover(s); quarantine per child: {quarantine:?}");

    // The three claims this example (and CI's mux-quick gate) stands on.
    assert!(
        failures.is_empty(),
        "jobs {failures:?} returned unsorted output — silent corruption"
    );
    assert!(
        failovers >= 1,
        "the sabotaged child must cost at least one loud failover"
    );
    let faulty_quarantine = quarantine
        .iter()
        .find(|(label, _)| *label == FAULTY_CHILD)
        .map(|(_, nodes)| nodes.clone())
        .unwrap_or_default();
    assert!(
        faulty_quarantine.contains(&5),
        "child {FAULTY_CHILD} must report node 5 quarantined across the \
         process boundary, got {faulty_quarantine:?}"
    );
    assert!(
        recovered_degraded > 0,
        "the sabotaged child must serve jobs degraded after quarantine"
    );

    // Dropping the fleet closes every child session — their exit signal.
    drop(fleet);
    for child in &mut children {
        let status = child.wait()?;
        assert!(status.success(), "cube host exited with {status}");
    }
    println!("parent: both cube hosts exited cleanly — done");
    Ok(())
}
