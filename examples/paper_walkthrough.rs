//! The paper's Figure 5 worked example: sorting {10, 8, 3, 9, 4, 2, 7, 5}
//! on an n = 3 hypercube with the fault-tolerant algorithm, with the
//! predicate machinery shown piece by piece.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use aoft::hypercube::{NodeId, Subcube};
use aoft::sort::predicates::{vect_mask, vect_mask_recursive};
use aoft::sort::{bitonic, Algorithm, SortBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = vec![10, 8, 3, 9, 4, 2, 7, 5];
    println!("Figure 5 input, stored in P0..P7: {input:?}\n");

    // --- The schedule, stage by stage (in-memory reference) ---------------
    // Stage i sorts each SC_{i+1} subcube, alternating direction, building
    // ever longer bitonic sequences (Lemma 2).
    let mut values = input.clone();
    for stage in 0..3u32 {
        let span = 1usize << (stage + 1);
        for (chunk_idx, chunk) in values.chunks_mut(span).enumerate() {
            let start = NodeId::new((chunk_idx * span) as u32);
            let ascending = aoft::sort::subcube_ascending(Subcube::home(stage + 1, start));
            bitonic::bitonic_sort(chunk, ascending);
        }
        println!("after stage {stage}: {values:?}");
        for chunk in values.chunks(2 * span.min(4)) {
            assert!(bitonic::is_bitonic(chunk));
        }
    }
    println!("  (each consecutive pair of subcubes now forms a bitonic sequence)\n");

    // --- vect_mask: who holds which entries when --------------------------
    println!("vect_mask(i=2, j, P5): entries P5 holds after each exchange of stage 2");
    for step in (0..=2u32).rev() {
        let mask = vect_mask(8, 2, step, NodeId::new(5));
        assert_eq!(mask, vect_mask_recursive(8, 2, step, NodeId::new(5)));
        let members: Vec<usize> = mask.iter().map(|n| n.index()).collect();
        println!("  after dim-{step} exchange: {members:?}");
    }
    println!();

    // --- The real distributed run -----------------------------------------
    let report = SortBuilder::new(Algorithm::FaultTolerant)
        .keys(input.clone())
        .trace(true)
        .run()?;
    println!("distributed S_FT output: {:?}", report.output());
    assert_eq!(report.output(), &[2, 3, 4, 5, 7, 8, 9, 10]);

    let sends = report
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, aoft::sim::EventKind::Send { .. }))
        .count();
    println!(
        "the machine exchanged {sends} messages in {} ticks; \
         per node: {} main-loop + {} final-verification sends",
        report.elapsed(),
        3 * 4 / 2,
        3
    );
    Ok(())
}
