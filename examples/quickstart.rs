//! Quickstart: sort a list reliably on a simulated hypercube.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use aoft::sort::{Algorithm, SortBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 32 keys, one per node of a 5-dimensional hypercube — the machine the
    // paper measured.
    let keys: Vec<i32> = (0..32).map(|x| (x * 1103 + 12345) % 1000 - 500).collect();
    println!("input:  {keys:?}");

    let report = SortBuilder::new(Algorithm::FaultTolerant)
        .keys(keys.clone())
        .run()?;

    println!("sorted: {:?}", report.output());
    println!(
        "algorithm {} on {} nodes finished in {} simulated ticks \
         ({} messages, {} payload words)",
        report.algorithm(),
        report.blocks().len(),
        report.elapsed(),
        report.metrics().total_msgs(),
        report.metrics().total_words(),
    );

    // The same sort through the unreliable baseline and the host, for
    // comparison.
    for algorithm in [Algorithm::NonRedundant, Algorithm::HostSequential] {
        let baseline = SortBuilder::new(algorithm).keys(keys.clone()).run()?;
        println!(
            "baseline {:<9} -> {} ticks",
            baseline.algorithm().to_string(),
            baseline.elapsed()
        );
        assert_eq!(baseline.output(), report.output());
    }
    Ok(())
}
