//! Quickstart: sort a list reliably on a simulated hypercube.
//!
//! ```text
//! cargo run --example quickstart
//! ```

mod common;

use aoft::sort::{Algorithm, SortBuilder};
use common::demo_keys;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 32 keys, one per node of a 5-dimensional hypercube — the machine the
    // paper measured.
    let keys = demo_keys(32, 1);
    println!("input:  {keys:?}");

    let report = SortBuilder::new(Algorithm::FaultTolerant)
        .keys(keys.clone())
        .run()?;

    println!("sorted: {:?}", report.output());
    println!(
        "algorithm {} on {} nodes finished in {} simulated ticks \
         ({} messages, {} payload words)",
        report.algorithm(),
        report.blocks().len(),
        report.elapsed(),
        report.metrics().total_msgs(),
        report.metrics().total_words(),
    );

    // The same sort through the unreliable baseline and the host, for
    // comparison.
    for algorithm in [Algorithm::NonRedundant, Algorithm::HostSequential] {
        let baseline = SortBuilder::new(algorithm).keys(keys.clone()).run()?;
        println!(
            "baseline {:<9} -> {} ticks",
            baseline.algorithm().to_string(),
            baseline.elapsed()
        );
        assert_eq!(baseline.output(), report.output());
    }
    Ok(())
}
