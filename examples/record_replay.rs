//! Record a Byzantine incident, then replay it bit-exactly.
//!
//! The deterministic scheduler makes a run a pure function of its inputs,
//! so a recorded trace is a *perfect* bug report: anyone can re-execute it
//! and observe the identical Φ-violation sequence — same detectors, same
//! codes, same virtual timestamps. This example records a corrupt-value
//! incident on a 16-node machine, saves the trace, tampers with one byte
//! of the recorded outcome, and shows the verifier catching it.
//!
//! ```text
//! cargo run --example record_replay
//! ```

mod common;

use aoft::faults::{FaultKind, FaultPlan, Trigger};
use aoft::hypercube::NodeId;
use aoft::replay::{record, verify, RecordSpec, RecordedOutcome};
use aoft::sort::Algorithm;
use common::demo_keys;

fn main() {
    let keys = demo_keys(16, 1);
    let plan = FaultPlan::new().with_fault(
        NodeId::new(9),
        FaultKind::CorruptValue,
        Trigger::from_seq(1),
        0xBAD5EED,
    );

    // 1. Record: run S_FT deterministically under the fault and capture
    //    everything a re-execution needs.
    let trace = record(
        RecordSpec::new(Algorithm::FaultTolerant, keys)
            .nodes(16)
            .fault_plan(plan),
    )
    .expect("run spec is valid");
    println!("recorded: {}", trace.summary());
    if let RecordedOutcome::FailStop { reports } = &trace.outcome {
        for report in reports {
            println!("  {report}");
        }
    }

    // 2. Save / load through the JSON artifact format.
    let dir = std::env::temp_dir();
    let path = dir.join("aoft-example-trace.json");
    aoft::replay::write_trace(&path, &trace).expect("trace writes");
    let loaded = aoft::replay::read_trace(&path).expect("trace reads back");
    assert_eq!(loaded, trace);
    println!("saved + reloaded {}", path.display());

    // 3. Verify: the replay reproduces the incident bit for bit.
    let report = verify(&loaded).expect("replay executes");
    assert!(report.is_bit_exact());
    println!("verify: {report}");

    // 4. Tamper with the recording: the verifier is the tripwire.
    let mut tampered = trace;
    if let RecordedOutcome::FailStop { reports } = &mut tampered.outcome {
        reports.pop();
    }
    let report = verify(&tampered).expect("replay executes");
    assert!(!report.is_bit_exact());
    println!("tampered trace caught:\n{report}");

    let _ = std::fs::remove_file(&path);
}
