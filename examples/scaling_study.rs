//! Scaling study: measure small machines, fit the paper's cost forms, and
//! project to the machine sizes "we are concerned with in a real
//! multicomputer application" (Figures 6 + 7 in one sitting).
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use aoft::models::complexity::ModelConstants;
use aoft::models::experiments::{fig7, table1};
use aoft::sort::{Algorithm, SortBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Measured sizes (the paper had a 32-node cube; we can go bigger).
    println!("measured (ticks):");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "N", "S_NR", "S_FT", "host-seq"
    );
    for dim in 2..=6u32 {
        let nodes = 1usize << dim;
        let keys: Vec<i32> = (0..nodes as i32).map(|x| (x * 37 + 5) % 211).collect();
        let mut row = vec![format!("{nodes:>6}")];
        for algorithm in [
            Algorithm::NonRedundant,
            Algorithm::FaultTolerant,
            Algorithm::HostSequential,
        ] {
            let report = SortBuilder::new(algorithm).keys(keys.clone()).run()?;
            row.push(format!("{:>12}", report.elapsed().to_string()));
        }
        println!("{}", row.join(" "));
    }

    // Fit our measurements to the paper's functional forms...
    let table = table1::run(7, 0xCAFE);
    println!("\n{table}");

    // ...and project, side by side with the paper's own constants.
    let ours = fig7::run(table.fitted, "fitted (this reproduction)", 5, 20);
    let paper = fig7::run(ModelConstants::PAPER, "paper", 5, 20);
    println!("{ours}");
    println!("{paper}");
    Ok(())
}
