//! The resident sort service surviving a node death mid-stream.
//!
//! ```text
//! cargo run --example sort_service
//! ```
//!
//! A `SortService` keeps a d=3 cube alive over loopback TCP and serves 32
//! sort jobs. Partway through the stream node 5's outgoing links go
//! permanently silent (a transport-level fail-silent crash — the node keeps
//! believing its sends succeed). The service's recovery loop takes over:
//!
//! 1. the in-flight job fail-stops and its reports are diagnosed;
//! 2. the implicated node is struck and quarantined, its cached links are
//!    purged;
//! 3. the job retries on the surviving subcube (degraded mode, d=2) and
//!    completes *correctly*;
//! 4. every later job avoids the quarantined node from the start.
//!
//! Per the paper's fail-stop discipline no job is ever answered with a
//! silently wrong result — the stream's only visible symptom is the latency
//! blip and the retry counter.

mod common;

use std::time::Duration;

use aoft::faults::{FaultyTransport, LinkFault};
use aoft::svc::{JobSpec, SortService, SvcConfig};
use common::{demo_keys, loopback_cluster, sorted};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Node 5 dies fail-silent once each of its links has carried 40 frames
    // — a handful of jobs in. The kill counters live in the service's link
    // cache, so the node stays dead across jobs until quarantined.
    let kill = LinkFault {
        kill_after: Some(40),
        ..LinkFault::default()
    };
    let transport = FaultyTransport::new(loopback_cluster(8)?, 0x5e7c).fault_sender(5, kill);

    let config = SvcConfig::new(3)
        .max_attempts(4)
        .quarantine_after(1)
        .backoff(Duration::from_millis(5), Duration::from_millis(40))
        .recv_timeout(Duration::from_millis(800))
        .metrics_addr("127.0.0.1:0".parse()?);
    let service = SortService::start(config, transport)?;
    let metrics_addr = service.metrics_addr().expect("metrics endpoint enabled");

    println!("serving 32 jobs over loopback TCP; node 5 dies mid-stream");
    println!("Prometheus metrics live at http://{metrics_addr}/metrics\n");
    let mut recovered = Vec::new();
    for index in 0..32u64 {
        let keys = demo_keys(32, index as i64);
        let handle = service.submit(JobSpec::new(keys.clone()))?;
        let report = handle.wait()?;
        assert_eq!(report.output, sorted(&keys), "never silently wrong");
        if report.recovered() {
            recovered.push(report.id);
            println!(
                "{}: RECOVERED after {} attempt(s) — fail-stop diagnosed, \
                 retried on a degraded d={} cube ({:?} total)",
                report.id, report.attempts, report.dim, report.latency
            );
        } else {
            println!(
                "{}: ok on d={} in {:?}",
                report.id, report.dim, report.latency
            );
        }
    }

    let metrics = service.metrics();
    println!(
        "\n{} jobs completed ({} recovered, {} retries), p50 {:?}, p99 {:?}",
        metrics.jobs_completed,
        metrics.recovered_jobs,
        metrics.retries,
        metrics.latency_p50,
        metrics.latency_p99,
    );
    println!("quarantined node labels: {:?}", metrics.quarantined);

    // Live scrape of the Prometheus endpoint: the fault shows up as Φ
    // violations and a quarantine event next to the routine job, queue,
    // predicate, and per-link traffic counters.
    let exposition = aoft::obs::scrape(metrics_addr)?;
    let samples = aoft::obs::prom::parse_samples(&exposition).map_err(std::io::Error::other)?;
    println!("\nscrape of http://{metrics_addr}/metrics:");
    for name in [
        "aoft_jobs_completed_total",
        "aoft_job_retries_total",
        "aoft_quarantine_total",
        "aoft_predicate_checks_total",
        "aoft_violations_total",
        "aoft_net_bytes_sent_total",
    ] {
        println!("  {name} = {}", samples[name]);
    }
    assert!(samples["aoft_predicate_checks_total"] > 0.0);
    assert!(samples["aoft_net_bytes_sent_total"] > 0.0);
    assert!(
        samples["aoft_violations_total"] > 0.0 || samples["aoft_quarantine_total"] > 0.0,
        "the injected kill must be visible on the scrape"
    );

    assert_eq!(metrics.jobs_completed, 32);
    assert!(
        !recovered.is_empty(),
        "node 5's death must surface as at least one recovered job"
    );
    // Mid-stream kills race cascaded timeouts, so the first diagnosis may
    // implicate the starved neighbors instead of node 5 itself; either way
    // the quarantine lands inside the blast region and the stream routes
    // around it.
    assert!(
        !metrics.quarantined.is_empty(),
        "the fail-stop must have quarantined an implicated node"
    );
    service.shutdown();
    println!("\nstream served: every result verified, zero silent corruption");
    Ok(())
}
