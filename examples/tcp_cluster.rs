//! A d=3 hypercube as eight threads exchanging over real loopback TCP.
//!
//! ```text
//! cargo run --example tcp_cluster
//! ```
//!
//! The simulator's node programs are transport-agnostic: handing
//! [`SortBuilder::run_on`] a [`TcpTransport`] runs the identical `S_FT`
//! schedule with every compare-exchange crossing a real socket — framed,
//! checksummed, heartbeat-monitored. Two runs are shown:
//!
//! 1. a clean sort of 64 keys across the 8 nodes;
//! 2. the same sort with node 5's outgoing links cut mid-stage (a
//!    transport-level fail-silent kill): the machine fail-stops and the
//!    host receives an [`ErrorReport`] naming the silent peer — the
//!    paper's "never silently wrong" guarantee holding over a lossy
//!    physical medium.

mod common;

use aoft::faults::{FaultyTransport, LinkFault};
use aoft::sort::SortError;
use common::{demo_keys, loopback_cluster, sft_builder, sorted};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let keys = demo_keys(64, 0);

    // Run 1: the cube sorts over TCP.
    let report = sft_builder(keys.clone(), 8).run_on(loopback_cluster(8)?)?;
    assert_eq!(report.output(), sorted(&keys).as_slice());
    println!(
        "clean run: {} keys sorted over loopback TCP by {} nodes \
         ({} messages, {} simulated ticks)",
        report.output().len(),
        report.blocks().len(),
        report.metrics().total_msgs(),
        report.elapsed(),
    );

    // Run 2: cut every link out of node 5 after its second send — the node
    // keeps computing and believes its sends succeed, but the wire is dead.
    let kill = LinkFault {
        kill_after: Some(2),
        ..LinkFault::default()
    };
    let faulty = FaultyTransport::new(loopback_cluster(8)?, 0xA0F7).fault_sender(5, kill);
    match sft_builder(keys, 8).run_on(faulty) {
        Ok(_) => unreachable!("a silenced peer must not yield a sorted result"),
        Err(SortError::Detected { reports, .. }) => {
            println!(
                "killed run: fail-stop with {} error report(s):",
                reports.len()
            );
            for report in &reports {
                println!("  {report}");
            }
        }
        Err(other) => return Err(other.into()),
    }
    Ok(())
}
