//! A d=3 hypercube as eight threads exchanging over real loopback TCP.
//!
//! ```text
//! cargo run --example tcp_cluster
//! ```
//!
//! The simulator's node programs are transport-agnostic: handing
//! [`SortBuilder::run_on`] a [`TcpTransport`] runs the identical `S_FT`
//! schedule with every compare-exchange crossing a real socket — framed,
//! checksummed, heartbeat-monitored. Two runs are shown:
//!
//! 1. a clean sort of 64 keys across the 8 nodes;
//! 2. the same sort with node 5's outgoing links cut mid-stage (a
//!    transport-level fail-silent kill): the machine fail-stops and the
//!    host receives an [`ErrorReport`] naming the silent peer — the
//!    paper's "never silently wrong" guarantee holding over a lossy
//!    physical medium.

use std::time::Duration;

use aoft::faults::{FaultyTransport, LinkFault};
use aoft::sim::{TcpConfig, TcpTransport};
use aoft::sort::{Algorithm, SortBuilder, SortError};

/// Binds a fresh loopback transport. Dials for unmapped labels default to
/// the transport's own listener, which is exactly right for a
/// single-process cluster; `set_peer` is shown for the multi-process case
/// where each node label lives at a different address.
fn loopback_cluster() -> Result<TcpTransport, Box<dyn std::error::Error>> {
    let transport = TcpTransport::bind(TcpConfig::default())?;
    let addr = transport.local_addr();
    for label in 0..8 {
        transport.set_peer(label, addr);
    }
    Ok(transport)
}

fn builder(keys: Vec<i32>) -> SortBuilder {
    SortBuilder::new(Algorithm::FaultTolerant)
        .keys(keys)
        .nodes(8)
        .recv_timeout(Duration::from_millis(800))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let keys: Vec<i32> = (0..64i32)
        .map(|x| x.wrapping_mul(-1_640_531_535) % 1000)
        .collect();

    // Run 1: the cube sorts over TCP.
    let report = builder(keys.clone()).run_on(loopback_cluster()?)?;
    let mut expected = keys.clone();
    expected.sort_unstable();
    assert_eq!(report.output(), expected.as_slice());
    println!(
        "clean run: {} keys sorted over loopback TCP by {} nodes \
         ({} messages, {} simulated ticks)",
        report.output().len(),
        report.blocks().len(),
        report.metrics().total_msgs(),
        report.elapsed(),
    );

    // Run 2: cut every link out of node 5 after its second send — the node
    // keeps computing and believes its sends succeed, but the wire is dead.
    let kill = LinkFault {
        kill_after: Some(2),
        ..LinkFault::default()
    };
    let faulty = FaultyTransport::new(loopback_cluster()?, 0xA0F7).fault_sender(5, kill);
    match builder(keys).run_on(faulty) {
        Ok(_) => unreachable!("a silenced peer must not yield a sorted result"),
        Err(SortError::Detected { reports }) => {
            println!(
                "killed run: fail-stop with {} error report(s):",
                reports.len()
            );
            for report in &reports {
                println!("  {report}");
            }
        }
        Err(other) => return Err(other.into()),
    }
    Ok(())
}
