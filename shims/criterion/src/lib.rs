//! Offline shim for `criterion`: the benchmarking API surface this
//! workspace uses, measured with plain wall-clock timing.
//!
//! No statistics, plots, or baselines — each benchmark is calibrated to a
//! short measurement window and reports mean time per iteration (plus
//! throughput when configured). Good enough to compare codec or sort
//! variants on one machine; not a replacement for real criterion numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(100),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI flags are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        let warm_up_time = self.warm_up_time;
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            measurement_time,
            warm_up_time,
            sample_size,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_benchmark(
            f,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
        );
        print_report(name, &report, None);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up_time = time;
        self
    }

    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work per iteration, enabling a rate in the report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = run_benchmark(
            |b| f(b, input),
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
        );
        let label = format!("{}/{}", self.name, id.label);
        print_report(&label, &report, self.throughput.as_ref());
        self
    }

    /// Runs one named benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_benchmark(
            f,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
        );
        let label = format!("{}/{}", self.name, name);
        print_report(&label, &report, self.throughput.as_ref());
        self
    }

    /// Ends the group (reports are printed as benchmarks run).
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

struct Report {
    mean_ns_per_iter: f64,
}

fn run_benchmark<F>(
    mut f: F,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
) -> Report
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and calibration: double iteration counts until one batch
    // fills a slice of the warm-up window.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    let mut per_iter_ns;
    loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter_ns = bencher.elapsed.as_nanos() as f64 / iters.max(1) as f64;
        if warm_start.elapsed() >= warm_up || bencher.elapsed >= warm_up / 4 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    // Choose a batch size so `sample_size` batches fit the measurement
    // window, then time them.
    let budget_ns = measurement.as_nanos() as f64 / sample_size.max(1) as f64;
    let batch = if per_iter_ns.is_finite() && per_iter_ns > 0.0 {
        ((budget_ns / per_iter_ns) as u64).clamp(1, 1_000_000_000)
    } else {
        1_000
    };

    let mut total_ns = 0.0;
    let mut total_iters: u64 = 0;
    let measure_start = Instant::now();
    for _ in 0..sample_size.max(1) {
        let mut bencher = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        total_ns += bencher.elapsed.as_nanos() as f64;
        total_iters += batch;
        // Never exceed 4x the window even if calibration was off.
        if measure_start.elapsed() > measurement * 4 {
            break;
        }
    }

    Report {
        mean_ns_per_iter: total_ns / total_iters.max(1) as f64,
    }
}

fn print_report(label: &str, report: &Report, throughput: Option<&Throughput>) {
    let ns = report.mean_ns_per_iter;
    let time = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = *n as f64 / (ns / 1e9);
            println!("{label:<48} {time}/iter   {:.2} Melem/s", rate / 1e6);
        }
        Some(Throughput::Bytes(n)) => {
            let rate = *n as f64 / (ns / 1e9);
            println!(
                "{label:<48} {time}/iter   {:.2} MiB/s",
                rate / (1024.0 * 1024.0)
            );
        }
        None => println!("{label:<48} {time}/iter"),
    }
}

/// Bundles benchmark functions into a group runner, as real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closure() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(2),
            sample_size: 3,
        };
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4)).bench_with_input(
            BenchmarkId::new("sum", 4),
            &4u64,
            |b, &n| b.iter(|| (0..n).sum::<u64>()),
        );
        group.finish();
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(2),
            sample_size: 2,
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }
}
