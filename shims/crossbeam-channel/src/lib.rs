//! Offline shim for `crossbeam-channel`: an MPMC channel built on
//! `Mutex` + `Condvar`.
//!
//! Provides the subset this workspace uses — `unbounded`, cloneable
//! `Sender`/`Receiver`, blocking/timed/non-blocking receives, and
//! disconnection semantics (a channel is disconnected for receivers when
//! every `Sender` is dropped, and for senders when every `Receiver` is
//! dropped). The `select!` macro is intentionally absent: call sites were
//! rewritten against deadline-sliced receives (see `aoft-net`).

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Creates a channel with a capacity hint.
///
/// The shim does not implement backpressure: the capacity is accepted for
/// API compatibility and the channel behaves as unbounded.
pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
    unbounded()
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Sends a message, failing if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// `true` if the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().queue.is_empty()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        let disconnected = state.senders == 0;
        drop(state);
        if disconnected {
            // Wake all blocked receivers so they observe the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or the channel disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (s, _r) = self
                .shared
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = s;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        if let Some(v) = state.queue.pop_front() {
            return Ok(v);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Drains currently queued messages without blocking.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// Blocking iterator: yields until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// `true` if the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().queue.is_empty()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.lock().receivers -= 1;
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

/// Non-blocking drain iterator (see [`Receiver::try_iter`]).
#[derive(Debug)]
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

/// Blocking iterator (see [`Receiver::iter`]).
#[derive(Debug)]
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// The message could not be sent: every receiver was dropped.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> Error for SendError<T> {}

/// The channel is empty and every sender was dropped.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl Error for RecvError {}

/// Why a timed receive returned without a message.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// The timeout elapsed first.
    Timeout,
    /// The channel is empty and every sender was dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

impl Error for RecvTimeoutError {}

/// Why a non-blocking receive returned without a message.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// No message was queued.
    Empty,
    /// The channel is empty and every sender was dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("channel empty"),
            TryRecvError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

impl Error for TryRecvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            tx.send(42u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        t.join().unwrap();
    }

    #[test]
    fn try_iter_drains() {
        let (tx, rx) = unbounded();
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn clone_senders_count() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
