//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! Only the API surface this workspace uses is provided: `Mutex`, `RwLock`
//! and `Condvar` with the parking_lot calling convention (no poison
//! `Result`s). A thread that observes a poisoned std lock recovers the inner
//! guard, matching parking_lot's semantics of not poisoning at all.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive (parking_lot calling convention).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// An RAII mutex guard.
///
/// The inner `Option` is a guard-parking slot for [`Condvar`] waits; it is
/// `Some` at every point user code can observe.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").finish()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside a wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside a wait")
    }
}

/// A reader-writer lock (parking_lot calling convention).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard.
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive write guard.
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").finish()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

/// Result of a timed wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard present outside a wait");
        guard.0 = Some(self.0.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.0.take().expect("guard present outside a wait");
        let (g, r) = self
            .0
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(g);
        WaitTimeoutResult(r.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Condvar").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        t.join().unwrap();
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
