//! Offline shim for `proptest`: random-input property testing with the
//! strategy combinators this workspace uses.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its case number and message only;
//! * generation is a plain deterministic RNG seeded from the test's full
//!   path, so every run explores the same inputs (failures are reproducible
//!   without a persistence file).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed; the property is false.
    Fail(String),
    /// A `prop_assume!` filtered the input; the case does not count.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic case generator, seeded from the test path.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from `name` (FNV-1a over the bytes), so each test gets its own
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(hash))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn pick(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.pick(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Full-domain strategy for `T` (`any::<T>()`).
pub fn any<T: ArbitraryShim>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Types with a full-domain distribution for [`any`].
pub trait ArbitraryShim {
    /// Draws one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),* $(,)?) => {$(
        impl ArbitraryShim for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

impl<T: ArbitraryShim> Strategy for Any<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1),
    (A/0, B/1, C/2),
    (A/0, B/1, C/2, D/3),
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// `Vec` of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }

    /// `HashSet` of `element` values; draws up to the sampled length
    /// (duplicates collapse, as with real proptest before retries).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    /// The strategy returned by [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn pick(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let want = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            let mut set = HashSet::with_capacity(want);
            // Bounded attempts: small element domains may not hold `want`
            // distinct values.
            for _ in 0..want.saturating_mul(4) {
                if set.len() >= want {
                    break;
                }
                set.insert(self.element.pick(rng));
            }
            set
        }
    }
}

/// Sampling strategies (`prop::sample::*`).
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniformly selects one of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "prop::sample::select: empty options");
        Select(options)
    }

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn pick(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Re-exports matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runs one property to completion; used by the generated test fns.
///
/// `run_case` returns `Ok` on pass, `Reject` to discard, `Fail` to fail the
/// property. Panics (reporting the case number) on failure or on an
/// excessive rejection rate.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut run_case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = (config.cases as u64) * 64 + 1024;
    while passed < config.cases {
        match run_case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest {name}: too many rejected inputs \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name}: case {} failed: {msg}", passed + 1);
            }
        }
    }
}

/// Declares property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..10, mut v in prop::collection::vec(any::<i32>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @config($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($config:expr)) => {};
    (@config($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                |__rng| {
                    $crate::__proptest_bind!(__rng; $($args)*,);
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_impl! { @config($config) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; ,) => {};
    ($rng:ident; mut $name:ident in $strat:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::pick(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::pick(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                concat!("assertion failed: ", stringify!($cond), ": {}"),
                format!($($fmt)+),
            )));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                __l, __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`: {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r,
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                __l,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`: {}\n  both: {:?}",
                format!($($fmt)+), __l,
            )));
        }
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay within bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(pair in (0u8..4, 0u32..96), x in 1u32..10) {
            prop_assert!(pair.0 < 4);
            prop_assert!(pair.1 < 96);
            prop_assert!((1..10).contains(&x));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(-50i32..50, 0..20),
            s in prop::collection::hash_set(0u32..128, 0..40),
            choice in prop::sample::select(vec![1usize, 2, 5]),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|x| (-50..50).contains(x)));
            prop_assert!(s.len() < 40);
            prop_assert!([1usize, 2, 5].contains(&choice));
        }

        #[test]
        fn map_and_mut_bindings(
            mut v in prop::collection::vec(any::<i32>(), 0..7)
                .prop_map(|mut v| { v.resize(v.len().next_power_of_two().max(1), 0); v }),
        ) {
            prop_assert!(v.len().is_power_of_two());
            v.sort();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn assume_discards(x in any::<u32>()) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    fn deterministic_per_name() {
        use crate::{Strategy, TestRng};
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        let strat = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(strat.pick(&mut a), strat.pick(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "case 1 failed")]
    fn failing_property_panics() {
        crate::run_property("fails", &crate::ProptestConfig::with_cases(4), |_rng| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }
}
