//! Offline shim for `rand` 0.8: the trait surface this workspace uses
//! (`RngCore`, `Rng`, `SeedableRng`) with uniform sampling over integer and
//! float ranges.
//!
//! Sampling is deliberately simple (modulo reduction); the workspace uses
//! randomness for workload generation and fault-injection choices where
//! reproducibility matters and sub-ULP uniformity does not.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible directly from an RNG (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range from which a uniform value can be sampled (`Rng::gen_range`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_uint_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

sample_uint_range!(u8, u16, u32, u64, usize);

macro_rules! sample_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as i64 as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}

sample_int_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the full-width distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::draw(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a 64-bit seed (splitmix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// The splitmix64 sequence, used for seed expansion.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Starts the sequence at `state`.
    pub fn new(state: u64) -> Self {
        Self { state }
    }

    /// The next value of the sequence.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Commonly used generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A fast, deterministic generator (xoshiro256++ core).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let x: usize = rng.gen_range(0..=3);
            assert!(x <= 3);
            let f: f64 = rng.gen_range(10.0..100.0);
            assert!((10.0..100.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((3_000..7_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn unsized_rng_callable() {
        fn takes_unsized<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = takes_unsized(&mut rng);
        assert!(v < 10);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
