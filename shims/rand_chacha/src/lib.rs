//! Offline shim for `rand_chacha`.
//!
//! Exposes `ChaCha8Rng`/`ChaCha12Rng`/`ChaCha20Rng` names backed by the rand
//! shim's xoshiro256++ core. The workspace uses these for *reproducible*
//! pseudo-randomness (workloads, fault plans), not for cryptography; the
//! stream differs from real ChaCha but is deterministic per seed, which is
//! the property every caller relies on.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

macro_rules! chacha {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name(StdRng);

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.0.next_u32()
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                Self(StdRng::from_seed(seed))
            }
        }
    };
}

chacha!(
    /// Deterministic generator named after ChaCha with 8 rounds.
    ChaCha8Rng
);
chacha!(
    /// Deterministic generator named after ChaCha with 12 rounds.
    ChaCha12Rng
);
chacha!(
    /// Deterministic generator named after ChaCha with 20 rounds.
    ChaCha20Rng
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_repeat() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x: i32 = rng.gen();
        let _ = x;
        assert!(rng.gen_range(0..8u32) < 8);
    }
}
