//! Offline shim for `serde`: a value-tree serialization framework.
//!
//! Instead of serde's visitor architecture, types convert to and from a
//! self-describing [`Value`] tree; `serde_json` (the sibling shim) renders
//! and parses that tree with serde_json's conventions (externally tagged
//! enums, `null` for `None`, objects for named fields). The `Serialize` /
//! `Deserialize` derive macros come from the `serde_derive` shim and target
//! exactly this trait pair, so `#[derive(Serialize, Deserialize)]` code
//! compiles unchanged.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer (stored with its sign).
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as a float (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(v) => Some(v),
            Value::UInt(v) => Some(v as f64),
            Value::Int(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X while deserializing Y, found Z"-style error.
    pub fn expected(what: &str, context: &str, found: &Value) -> Self {
        DeError(format!(
            "expected {what} while deserializing {context}, found {}",
            found.kind()
        ))
    }

    /// Free-form error.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts to the value tree.
    fn to_value(&self) -> Value;
}

/// A type reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs from the value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match the type's shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    pub use crate::DeError;

    /// Owned deserialization marker (the shim has no borrowed variant, so
    /// every `Deserialize` type qualifies).
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Looks up a struct field by name, treating a missing entry as `null`
/// (so `Option` fields default to `None`, as with serde_json).
///
/// # Errors
///
/// Propagates the field type's own [`DeError`].
pub fn de_field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("{context}.{name}: {}", e.0))),
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError(format!("missing field `{name}` in {context}"))),
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", stringify!($t), v))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| DeError::expected("integer", stringify!($t), v))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::expected("number", "f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64()
            .ok_or_else(|| DeError::expected("number", "f32", v))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::expected("bool", "bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("string", "char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::msg(format!("expected one-char string, got {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("array", "Vec", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_seq()
            .ok_or_else(|| DeError::expected("array", "fixed array", v))?;
        if items.len() != N {
            return Err(DeError::msg(format!(
                "expected {N} elements, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::msg("array length mismatch".to_string()))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_seq()
            .ok_or_else(|| DeError::expected("array", "tuple", v))?;
        if items.len() != 2 {
            return Err(DeError::msg(format!(
                "expected 2-tuple, got {} items",
                items.len()
            )));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_seq()
            .ok_or_else(|| DeError::expected("array", "tuple", v))?;
        if items.len() != 3 {
            return Err(DeError::msg(format!(
                "expected 3-tuple, got {} items",
                items.len()
            )));
        }
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("object", "BTreeMap", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic order for stable output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("object", "HashMap", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", "()", other)),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".into(), Value::UInt(self.as_secs())),
            ("nanos".into(), Value::UInt(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::expected("object", "Duration", v))?;
        let secs: u64 = de_field(entries, "secs", "Duration")?;
        let nanos: u32 = de_field(entries, "nanos", "Duration")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
    }

    #[test]
    fn option_null_mapping() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::UInt(3)), Ok(Some(3)));
    }

    #[test]
    fn missing_option_field_defaults() {
        let entries: Vec<(String, Value)> = vec![];
        let missing: Option<u32> = de_field(&entries, "gone", "T").unwrap();
        assert_eq!(missing, None);
        assert!(de_field::<u32>(&entries, "gone", "T").is_err());
    }

    #[test]
    fn nested_collections() {
        let v = vec![Some(1u32), None, Some(3)];
        let tree = v.to_value();
        assert_eq!(Vec::<Option<u32>>::from_value(&tree), Ok(v));
    }

    #[test]
    fn signed_positive_becomes_uint() {
        // serde_json prints positive i64 without sign; mirror that so
        // u64 fields can read values written from i64 and vice versa.
        assert_eq!(5i64.to_value(), Value::UInt(5));
        assert_eq!(i64::from_value(&Value::UInt(5)), Ok(5));
    }
}
