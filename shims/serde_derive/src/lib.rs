//! Offline shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! without syn/quote.
//!
//! The macro hand-parses the item's token stream (plain structs and enums,
//! no generics) and emits impls of the value-tree `serde::Serialize` /
//! `serde::Deserialize` traits defined by the serde shim. Conventions match
//! serde_json:
//!
//! * named-field structs -> objects;
//! * 1-field tuple structs -> the inner value (newtype), which also covers
//!   `#[serde(transparent)]`;
//! * n-field tuple structs -> arrays;
//! * enums are externally tagged: unit variants -> `"Name"`, one-field
//!   variants -> `{"Name": value}`, n-field tuple variants ->
//!   `{"Name": [..]}`, struct variants -> `{"Name": {..}}`.
//!
//! Unsupported shapes (generics, unions) produce a compile error naming the
//! limitation rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match which {
                Which::Serialize => gen_serialize(&item),
                Which::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("derive shim emitted invalid Rust")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Parses the derive input down to names: struct/enum, field names or tuple
/// arity per variant. Types are irrelevant — generated code only calls
/// trait methods on field values.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(crate)`).
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Consume the bracket group.
                match tokens.next() {
                    Some(TokenTree::Group(_)) => {}
                    other => return Err(format!("malformed attribute near {other:?}")),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                if s == "union" {
                    return Err("serde shim derive: unions are not supported".into());
                }
                // e.g. `#[repr(...)]` handled above; any other modifier is
                // unexpected for the shapes this workspace derives.
            }
            Some(other) => return Err(format!("unexpected token {other}")),
            None => return Err("unexpected end of derive input".into()),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };

    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive: generic type `{name}` is not supported"
            ));
        }
    }

    let body = match tokens.next() {
        Some(TokenTree::Group(g)) => g,
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            return Ok(Item::Struct {
                name,
                fields: Fields::Unit,
            })
        }
        Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
            return Err(format!(
                "serde shim derive: where-clauses on `{name}` are not supported"
            ))
        }
        other => return Err(format!("expected item body, found {other:?}")),
    };

    if kind == "struct" {
        let fields = match body.delimiter() {
            Delimiter::Brace => Fields::Named(parse_named_fields(body.stream())?),
            Delimiter::Parenthesis => Fields::Tuple(count_tuple_fields(body.stream())),
            _ => return Err("unexpected struct body delimiter".into()),
        };
        Ok(Item::Struct { name, fields })
    } else {
        Ok(Item::Enum {
            name,
            variants: parse_variants(body.stream())?,
        })
    }
}

/// Field names of a named-field body (struct or enum-variant brace group).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    'outer: loop {
        // Skip per-field attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(_) => break,
                None => break 'outer,
            }
        }
        let field = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{field}`, found {other:?}")),
        }
        fields.push(field);
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {
                    tokens.next();
                }
                None => break 'outer,
            }
        }
    }
    Ok(fields)
}

/// Arity of a tuple body: top-level comma count (+1 if non-empty, ignoring
/// a trailing comma).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut saw_token_since_comma = false;
    for token in stream {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                saw_token_since_comma = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                saw_token_since_comma = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_token_since_comma = false;
            }
            _ => saw_token_since_comma = true,
        }
    }
    if saw_token_since_comma {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes (doc comments included).
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                Fields::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream())?;
                tokens.next();
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err("serde shim derive: explicit discriminants not supported".into())
            }
            None => {
                variants.push(Variant { name, fields });
                break;
            }
            other => return Err(format!("expected `,` after variant, found {other:?}")),
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let mut entries = String::new();
                    for f in fields {
                        entries.push_str(&format!(
                            "(::std::string::String::from({f:?}), \
                             ::serde::Serialize::to_value(&self.{f})),"
                        ));
                    }
                    format!("::serde::Value::Map(::std::vec![{entries}])")
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let mut items = String::new();
                    for i in 0..*n {
                        items.push_str(&format!("::serde::Serialize::to_value(&self.{i}),"));
                    }
                    format!("::serde::Value::Seq(::std::vec![{items}])")
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from({vname:?})),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{items}])")
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({vname:?}), {payload})]),",
                            binds.join(",")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(",");
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}{{{binds}}} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({vname:?}), \
                              ::serde::Value::Map(::std::vec![{entries}]))]),"
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let mut inits = String::new();
                    for f in fields {
                        inits.push_str(&format!(
                            "{f}: ::serde::de_field(__entries, {f:?}, {name:?})?,"
                        ));
                    }
                    format!(
                        "let __entries = __v.as_map().ok_or_else(|| \
                         ::serde::DeError::expected(\"object\", {name:?}, __v))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})"
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let mut inits = String::new();
                    for i in 0..*n {
                        inits.push_str(&format!(
                            "::serde::Deserialize::from_value(&__items[{i}])?,"
                        ));
                    }
                    format!(
                        "let __items = __v.as_seq().ok_or_else(|| \
                         ::serde::DeError::expected(\"array\", {name:?}, __v))?;\n\
                         if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::msg(\
                                 ::std::format!(\"expected {n} elements for {name}, got {{}}\", __items.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({inits}))"
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok(\
                         {name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let mut inits = String::new();
                        for i in 0..*n {
                            inits.push_str(&format!(
                                "::serde::Deserialize::from_value(&__items[{i}])?,"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                                 let __items = __inner.as_seq().ok_or_else(|| \
                                 ::serde::DeError::expected(\"array\", {vname:?}, __inner))?;\n\
                                 if __items.len() != {n} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::msg(\
                                     ::std::format!(\"expected {n} elements for {name}::{vname}, got {{}}\", __items.len())));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({inits}))\n\
                             }},"
                        ));
                    }
                    Fields::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::de_field(__entries, {f:?}, {vname:?})?,"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                                 let __entries = __inner.as_map().ok_or_else(|| \
                                 ::serde::DeError::expected(\"object\", {vname:?}, __inner))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                             }},"
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::std::option::Option::Some(__tag) = __v.as_str() {{\n\
                             return match __tag {{\n\
                                 {unit_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::msg(\
                                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                             }};\n\
                         }}\n\
                         let __entries = __v.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"string or object\", {name:?}, __v))?;\n\
                         if __entries.len() != 1 {{\n\
                             return ::std::result::Result::Err(::serde::DeError::msg(\
                                 ::std::format!(\"expected single-key object for {name}, got {{}} keys\", __entries.len())));\n\
                         }}\n\
                         let (__tag, __inner) = (&__entries[0].0, &__entries[0].1);\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::msg(\
                                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
