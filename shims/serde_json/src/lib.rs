//! Offline shim for `serde_json`: `to_string` / `to_string_pretty` /
//! `from_str` over the serde shim's [`serde::Value`] tree.
//!
//! The emitted text is ordinary JSON; floats that hold an integral value are
//! printed with a trailing `.0` so they round-trip back as floats.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// `Result` with this crate's [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as indented JSON (two spaces).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                // serde_json maps non-finite floats to null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error("unpaired surrogate".into()));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error("invalid \\u escape".into()))?);
                            continue; // parse_hex4 already advanced pos
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via the chars iterator).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("bad \\u escape".into()))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if is_float {
            let x: f64 = text
                .parse()
                .map_err(|_| Error(format!("bad number `{text}`")))?;
            Ok(Value::Float(x))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative integer; fall back to float on i64 overflow.
            if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                match text.parse::<i64>() {
                    Ok(n) => Ok(Value::Int(n)),
                    Err(_) => Ok(Value::Float(
                        text.parse()
                            .map_err(|_| Error(format!("bad number `{text}`")))?,
                    )),
                }
            } else {
                Err(Error(format!("bad number `{text}`")))
            }
        } else {
            match text.parse::<u64>() {
                Ok(n) => Ok(Value::UInt(n)),
                Err(_) => Ok(Value::Float(
                    text.parse()
                        .map_err(|_| Error(format!("bad number `{text}`")))?,
                )),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_round_trips() {
        let s = to_string(&42u32).unwrap();
        assert_eq!(s, "42");
        let n: u32 = from_str(&s).unwrap();
        assert_eq!(n, 42);

        let s = to_string(&-7i64).unwrap();
        assert_eq!(s, "-7");
        let n: i64 = from_str(&s).unwrap();
        assert_eq!(n, -7);

        let s = to_string(&1.5f64).unwrap();
        assert_eq!(s, "1.5");
        let x: f64 = from_str(&s).unwrap();
        assert_eq!(x, 1.5);

        // Integral floats keep their `.0` so they parse back as floats.
        let s = to_string(&3.0f64).unwrap();
        assert_eq!(s, "3.0");
        let x: f64 = from_str(&s).unwrap();
        assert_eq!(x, 3.0);
    }

    #[test]
    fn string_escapes() {
        let original = "line\n\"quoted\"\tend\\ unicode: é λ".to_string();
        let s = to_string(&original).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn unicode_escape_parsing() {
        let s: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(s, "é\u{1F600}");
    }

    #[test]
    fn containers() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"a":1,"b":2}"#);
        let back: BTreeMap<String, u64> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u32, 2];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn option_round_trip() {
        let some = Some(5u32);
        let none: Option<u32> = None;
        assert_eq!(to_string(&some).unwrap(), "5");
        assert_eq!(to_string(&none).unwrap(), "null");
        let back: Option<u32> = from_str("null").unwrap();
        assert_eq!(back, none);
        let back: Option<u32> = from_str("5").unwrap();
        assert_eq!(back, some);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
