//! # AOFT — Reliable Distributed Sorting through Application-Oriented Fault Tolerance
//!
//! A reproduction of McMillin & Ni, *"Reliable Distributed Sorting Through the
//! Application-Oriented Fault Tolerance Paradigm"* (ICDCS 1989): fault-tolerant
//! bitonic sorting on a simulated hypercube multicomputer.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`hypercube`] — topology, home subcubes, node-set masks, disjoint paths.
//! * [`sim`] — thread-per-node multicomputer simulator with virtual-time cost
//!   accounting, a host processor, metrics and tracing.
//! * [`faults`] — Byzantine adversaries, fault plans and coverage campaigns.
//! * [`sort`] — the paper's contribution: the non-redundant bitonic sort
//!   `S_NR`, the fault-tolerant `S_FT` with the constraint predicate
//!   (Φ_P, Φ_F, Φ_C), block variants, and the host-sequential baselines.
//! * [`net`] — pluggable transports: in-process channels, TCP links with
//!   heartbeat failure detection, and transport-level fault injection.
//! * [`svc`] — a resident sorting service: bounded job queue with admission
//!   control, a worker pool multiplexing the cube over any transport, and a
//!   diagnosis-driven recovery loop (quarantine + degraded-mode retry).
//! * [`obs`] — unified observability: a process-global metric registry with
//!   a Prometheus text endpoint, fixed-bucket latency histograms, and a
//!   JSONL event journal for fail-stop postmortems.
//! * [`models`] — analytic cost models and the experiment harness that
//!   regenerates every table and figure of the paper.
//! * [`replay`] — deterministic record/replay: schema-versioned run traces
//!   that re-execute bit-exactly on the cooperative scheduler
//!   (`aoft-replay verify <trace>`).
//! * [`adv`] — live-fire Byzantine adversaries over the real wire: semantic
//!   fault injection at the codec boundary of any transport, plus the
//!   `aoft-adv campaign` zero-silent-corruption gate.
//!
//! # Quickstart
//!
//! ```
//! use aoft::sort::{SortBuilder, Algorithm};
//!
//! // Sort 8 values, one per node of a 3-dimensional hypercube, with the
//! // fault-tolerant algorithm S_FT.
//! let input = vec![10, 8, 3, 9, 4, 2, 7, 5];
//! let report = SortBuilder::new(Algorithm::FaultTolerant)
//!     .keys(input.clone())
//!     .run()?;
//! let mut expected = input;
//! expected.sort();
//! assert_eq!(report.output(), &expected[..]);
//! # Ok::<(), aoft::sort::SortError>(())
//! ```

#![forbid(unsafe_code)]

pub use aoft_adv as adv;
pub use aoft_faults as faults;
pub use aoft_hypercube as hypercube;
pub use aoft_models as models;
pub use aoft_net as net;
pub use aoft_obs as obs;
pub use aoft_replay as replay;
pub use aoft_sim as sim;
pub use aoft_sort as sort;
pub use aoft_svc as svc;
