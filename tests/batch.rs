//! Acceptance and property tests for composite-key micro-batching: a
//! coalesced attempt must be indistinguishable — bit for bit — from running
//! each job alone, under clean runs, injected fault plans, and a mid-batch
//! node death.

mod common;

use std::time::Duration;

use aoft::faults::{FaultKind, FaultPlan, FaultyTransport, LinkFault, Trigger};
use aoft::hypercube::NodeId;
use aoft::net::Transport;
use aoft::sim::{InProc, Packet};
use aoft::sort::Msg;
use aoft::svc::{JobSpec, SortService, SvcConfig};
use proptest::prelude::*;

/// One worker so queued jobs actually meet in its batcher; a short flush
/// window keeps lonely jobs fast.
fn batched_config(batch_max: usize) -> SvcConfig {
    SvcConfig::new(3)
        .workers(1)
        .batch_max(batch_max)
        .batch_flush(Duration::from_millis(5))
        .recv_timeout(Duration::from_millis(300))
}

/// Burst-submits every spec, then waits in order. Panics on any loud
/// failure: these tests only run plans the service is expected to survive.
fn run_all<T>(service: &SortService<T>, specs: &[JobSpec]) -> Vec<Vec<i32>>
where
    T: Transport<Packet<Msg>> + Send + Sync + 'static,
{
    let handles: Vec<_> = specs
        .iter()
        .map(|spec| service.submit(spec.clone()).expect("admit"))
        .collect();
    handles
        .into_iter()
        .enumerate()
        .map(|(i, handle)| {
            handle
                .wait()
                .unwrap_or_else(|err| panic!("job {i} failed loudly: {err}"))
                .output
        })
        .collect()
}

/// Deterministic keys inside every codec's admissible range (batch_max 1024
/// still leaves ±2^20; these stay within ±2^10).
fn batch_keys(salt: i64, len: usize) -> Vec<i32> {
    (0..len as i64)
        .map(|x| (((x + salt).wrapping_mul(2_654_435_761)) % 1024) as i32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole property: a batched service answers every job with the
    /// exact bytes a batching-off service produces for the same stream —
    /// clean jobs and solo-routed single-fault jobs alike.
    #[test]
    fn batched_outputs_are_bit_identical_to_solo_runs(
        salts in prop::collection::vec(0i64..10_000, 2..7),
        lens in prop::collection::vec(1usize..5, 2..7),
        fault_seed in any::<u64>(),
    ) {
        let specs: Vec<JobSpec> = salts
            .iter()
            .zip(lens.iter().cycle())
            .enumerate()
            .map(|(i, (&salt, &len))| {
                // Key counts must divide the 8-node cube: multiples of 8.
                let spec = JobSpec::new(batch_keys(salt, len * 8));
                if i == 0 && fault_seed % 3 == 0 {
                    // A single-fault rider: incompatible, takes the solo
                    // path inside the same batched service.
                    let node = NodeId::new((fault_seed % 8) as u32);
                    spec.fault_plan(FaultPlan::new().with_fault(
                        node,
                        FaultKind::Crash,
                        Trigger::from_seq(1),
                        fault_seed,
                    ))
                } else {
                    spec
                }
            })
            .collect();

        let batched = SortService::start(batched_config(8), InProc::new()).expect("start");
        let solo = SortService::start(batched_config(1), InProc::new()).expect("start");
        let got = run_all(&batched, &specs);
        let want = run_all(&solo, &specs);
        prop_assert_eq!(&got, &want, "batched and solo outputs diverge");
        for (spec, out) in specs.iter().zip(&got) {
            prop_assert_eq!(out, &common::sorted(&spec.keys), "silently wrong output");
        }
        batched.shutdown();
        solo.shutdown();
    }
}

/// A burst into one worker must actually coalesce — and the demuxed answers
/// must still be per-job exact.
#[test]
fn burst_coalesces_into_multi_job_attempts() {
    let service = SortService::start(batched_config(8), InProc::new()).expect("start");
    let specs: Vec<JobSpec> = (0..32).map(|i| JobSpec::new(batch_keys(i, 16))).collect();
    let outputs = run_all(&service, &specs);
    for (spec, out) in specs.iter().zip(&outputs) {
        assert_eq!(out, &common::sorted(&spec.keys));
    }
    let metrics = service.metrics();
    assert_eq!(metrics.jobs_completed, 32);
    assert!(
        metrics.jobs_coalesced > 0,
        "a 32-job burst into one worker must share at least one attempt"
    );
    assert!(
        metrics.batches_flushed < 32,
        "coalescing must need fewer attempts than jobs"
    );
    service.shutdown();
}

/// Recovery stays job-agnostic under batching: node 5 is fail-silent from
/// its first send, so the first batched attempt fail-stops mid-flight. The
/// violation names nodes (not jobs), the implicated pair is quarantined,
/// and every rider in the batch still completes with a verified output on
/// the degraded subcube.
#[test]
fn mid_batch_node_death_quarantines_and_completes_every_rider() {
    let faulty = FaultyTransport::new(InProc::new(), 0xBA7C4).fault_sender(
        5,
        LinkFault {
            kill_after: Some(0),
            ..LinkFault::default()
        },
    );
    let config = batched_config(8)
        .max_attempts(4)
        .quarantine_after(1)
        .backoff(Duration::ZERO, Duration::ZERO);
    let service = SortService::start(config, faulty).expect("start");

    let specs: Vec<JobSpec> = (100..108).map(|i| JobSpec::new(batch_keys(i, 8))).collect();
    let outputs = run_all(&service, &specs);
    for (spec, out) in specs.iter().zip(&outputs) {
        assert_eq!(out, &common::sorted(&spec.keys), "never silently wrong");
    }

    let metrics = service.metrics();
    assert_eq!(metrics.jobs_completed, 8, "every rider must complete");
    assert_eq!(metrics.jobs_failed, 0);
    assert!(
        metrics.retries >= 1,
        "the mid-batch kill must cost at least one retry"
    );
    let quarantined = service.quarantined();
    assert!(
        !quarantined.is_empty(),
        "the fail-stop must quarantine the implicated link endpoints"
    );
    assert!(
        quarantined.iter().all(|&n| n < 8),
        "quarantine holds physical cube labels, got {quarantined:?}"
    );
    service.shutdown();
}

/// The unbatched-path guard: `batch_max = 1` must behave exactly like the
/// service always has — every flush is a solo, nothing is ever coalesced,
/// and outputs are the per-job sorts.
#[test]
fn batch_max_one_is_byte_identical_to_the_unbatched_path() {
    let service = SortService::start(batched_config(1), InProc::new()).expect("start");
    let specs: Vec<JobSpec> = (0..8).map(|i| JobSpec::new(batch_keys(i, 16))).collect();
    let outputs = run_all(&service, &specs);
    for (spec, out) in specs.iter().zip(&outputs) {
        assert_eq!(out, &common::sorted(&spec.keys));
    }
    let metrics = service.metrics();
    assert_eq!(metrics.jobs_completed, 8);
    assert_eq!(metrics.jobs_coalesced, 0, "batch_max=1 never coalesces");
    assert_eq!(
        metrics.batches_flushed, 8,
        "every job is its own batch of one"
    );
    service.shutdown();
}
