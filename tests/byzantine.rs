//! Live-fire Byzantine acceptance over real TCP: the attack the paper is
//! about, on the wire the paper's model abstracts.
//!
//! A two-faced P0 skews its outgoing frames semantically (valid CRC,
//! well-formed `Msg`, a different story per link). The cube must fail-stop
//! on predicate evidence, the service must quarantine the equivocator
//! *itself* — not a bystander from the suspect region — and the retry on
//! the surviving subcube must answer correctly (Theorem 3: never silently
//! wrong).

mod common;

use std::time::Duration;

use aoft::adv::ByzantineTransport;
use aoft::faults::{FaultKind, FaultPlan, Trigger};
use aoft::hypercube::NodeId;
use aoft::net::{TcpConfig, TcpTransport};
use aoft::svc::{JobSpec, SortService, SvcConfig};

fn loopback(nodes: u32) -> TcpTransport {
    let transport = TcpTransport::bind(TcpConfig::default()).expect("bind loopback");
    let addr = transport.local_addr();
    for label in 0..nodes {
        transport.set_peer(label, addr);
    }
    transport
}

#[test]
fn tcp_two_faced_node_is_quarantined_by_name() {
    const TWO_FACED: u32 = 0;
    let plan = FaultPlan::new().with_fault(
        NodeId::new(TWO_FACED),
        FaultKind::TwoFaced,
        Trigger::always(),
        0xE0_0D,
    );
    let transport = ByzantineTransport::new(loopback(8), plan);
    let config = SvcConfig::new(3)
        .workers(1)
        .max_attempts(4)
        .quarantine_after(2)
        .min_dim(2)
        .backoff(Duration::from_millis(1), Duration::from_millis(10))
        .recv_timeout(Duration::from_millis(800));
    let service = SortService::start(config, transport).expect("service starts");

    let keys = common::scattered_keys(16, 0xE0);
    let report = service
        .submit(JobSpec::new(keys.clone()))
        .expect("admit")
        .wait()
        .expect("the job survives the equivocator");

    assert_eq!(report.output, common::sorted(&keys), "never silently wrong");
    assert!(report.attempts >= 2, "the first attempt must fail-stop");
    // Φ_C evidence names the two-faced sender: an echoed entry came back
    // changed after travelling only `checker → P0 → checker` (Lemma 6).
    let named = report
        .detections
        .iter()
        .flatten()
        .any(|r| r.suspect == Some(NodeId::new(TWO_FACED)) && r.detail.contains("Φ_C"));
    assert!(
        named,
        "some detection carries Φ_C evidence against P{TWO_FACED}: {:?}",
        report.detections
    );
    assert_eq!(
        service.quarantined(),
        vec![TWO_FACED],
        "the equivocator itself is quarantined, no bystanders"
    );
    service.shutdown();
}
