//! Helpers shared across the integration-test binaries.
#![allow(dead_code)] // not every test binary uses every helper

/// A sorted copy of `keys` — the expected output every sort run is checked
/// against. Hoisted here so individual tests don't each re-spell the
/// clone-and-sort dance.
pub fn sorted(keys: &[i32]) -> Vec<i32> {
    let mut expected = keys.to_vec();
    expected.sort_unstable();
    expected
}
