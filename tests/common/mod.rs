//! Helpers shared across the integration-test binaries.
#![allow(dead_code)] // not every test binary uses every helper

/// A sorted copy of `keys` — the expected output every sort run is checked
/// against. Hoisted here so individual tests don't each re-spell the
/// clone-and-sort dance.
pub fn sorted(keys: &[i32]) -> Vec<i32> {
    let mut expected = keys.to_vec();
    expected.sort_unstable();
    expected
}

/// Deterministic scattered keys: a multiplicative hash over `0..count`,
/// folded into `i16` range. `seed` varies the sequence between tests that
/// should not share data.
pub fn scattered_keys(count: usize, seed: u64) -> Vec<i32> {
    (0..count as i64)
        .map(|x| {
            let mixed = x.wrapping_add(seed as i64).wrapping_mul(2_654_435_761);
            (mixed % 65_536 - 32_768) as i32
        })
        .collect()
}
