//! Exhaustive (not sampled) fault sweep on a small machine: every fault
//! class × every node × every send position of the schedule. On a dim-2
//! cube each node makes 3 main-loop + 2 final-stage sends, so the full
//! cross product is enumerable — a complete check of Theorem 3 at this
//! size, not a statistical one.

mod common;

use std::time::Duration;

use aoft::faults::{FaultKind, FaultPlan, Trigger};
use aoft::hypercube::NodeId;
use aoft::sort::{Algorithm, SortBuilder, SortError};

const NODES: usize = 4;
/// Sends per node on a dim-2 cube: stages 0..1 contribute 1 + 2, the final
/// verification stage contributes 2.
const SENDS_PER_NODE: u64 = 1 + 2 + 2;

fn keys() -> Vec<i32> {
    vec![9, -4, 17, 0]
}

fn outcome(plan: FaultPlan) -> Result<bool, String> {
    let expected = common::sorted(&keys());
    match SortBuilder::new(Algorithm::FaultTolerant)
        .keys(keys())
        .fault_plan(plan)
        .recv_timeout(Duration::from_millis(400))
        .run()
    {
        Ok(report) if report.output() == expected => Ok(true),
        Ok(report) => Err(format!("SILENTLY WRONG: {:?}", report.output())),
        Err(SortError::Detected { .. }) => Ok(false),
        Err(other) => Err(format!("runner error: {other}")),
    }
}

#[test]
fn exhaustive_single_fault_sweep() {
    let mut trials = 0u32;
    let mut detected = 0u32;
    for kind in FaultKind::ALL {
        for node in 0..NODES as u32 {
            for at in 1..SENDS_PER_NODE {
                for seed in 0..2u64 {
                    let plan = FaultPlan::new().with_fault(
                        NodeId::new(node),
                        kind,
                        Trigger::at_seq(at),
                        seed * 7919 + u64::from(node),
                    );
                    trials += 1;
                    match outcome(plan) {
                        Ok(true) => {}
                        Ok(false) => detected += 1,
                        Err(msg) => panic!("{kind} at P{node} seq {at}: {msg}"),
                    }
                }
            }
        }
    }
    // 9 kinds × 4 nodes × 4 positions × 2 seeds = 288 trials, zero escapes.
    assert_eq!(trials, 288);
    assert!(
        detected > 60,
        "most single-shot faults manifest and are caught ({detected}/{trials})"
    );
}

#[test]
fn exhaustive_permanent_fault_sweep() {
    for kind in FaultKind::ALL {
        for node in 0..NODES as u32 {
            let plan = FaultPlan::new().with_fault(
                NodeId::new(node),
                kind,
                Trigger::from_seq(1),
                u64::from(node),
            );
            if let Err(msg) = outcome(plan) {
                panic!("permanent {kind} at P{node}: {msg}");
            }
        }
    }
}

#[test]
fn exhaustive_triple_fault_sweep_on_dim3() {
    // Beyond Theorem 3's n−1 = 2 bound for dim 3: even with *three*
    // Byzantine nodes the implementation should hold the never-silently-
    // wrong line empirically (the theorem's bound is about guaranteed
    // detection, not about when escapes begin).
    let keys: Vec<i32> = (0..8).map(|x| (x * 41 + 3) % 29).collect();
    let expected = common::sorted(&keys);
    let mut escapes = Vec::new();
    for a in 0..6u32 {
        for b in (a + 1)..7 {
            for c in (b + 1)..8 {
                let plan = FaultPlan::new()
                    .with_fault(
                        NodeId::new(a),
                        FaultKind::RandomByzantine,
                        Trigger::from_seq(1),
                        1,
                    )
                    .with_fault(
                        NodeId::new(b),
                        FaultKind::RandomByzantine,
                        Trigger::from_seq(1),
                        2,
                    )
                    .with_fault(
                        NodeId::new(c),
                        FaultKind::RandomByzantine,
                        Trigger::from_seq(1),
                        3,
                    );
                let result = SortBuilder::new(Algorithm::FaultTolerant)
                    .keys(keys.clone())
                    .fault_plan(plan)
                    .recv_timeout(Duration::from_millis(400))
                    .run();
                if let Ok(report) = result {
                    if report.output() != expected {
                        escapes.push((a, b, c));
                    }
                }
            }
        }
    }
    assert!(
        escapes.is_empty(),
        "silent escapes under triple faults: {escapes:?}"
    );
}
