//! The empirical Theorem 3: under injected Byzantine faults (within the
//! paper's environmental assumptions), `S_FT` either completes correctly or
//! fail-stops — across fault classes, locations, triggers and fault counts
//! it never silently returns a wrong result.

mod common;

use std::time::Duration;

use aoft::faults::{FaultKind, FaultPlan, Trigger};
use aoft::hypercube::NodeId;
use aoft::sort::{Algorithm, SortBuilder, SortError};
use proptest::prelude::*;

#[derive(Debug, PartialEq)]
enum Outcome {
    Correct,
    Detected,
    SilentlyWrong,
}

fn sft_outcome(plan: FaultPlan, keys: &[i32]) -> Outcome {
    let expected = common::sorted(keys);
    let result = SortBuilder::new(Algorithm::FaultTolerant)
        .keys(keys.to_vec())
        .fault_plan(plan)
        .recv_timeout(Duration::from_millis(400))
        .run();
    match result {
        Ok(report) if report.output() == expected => Outcome::Correct,
        Ok(_) => Outcome::SilentlyWrong,
        Err(SortError::Detected { .. }) => Outcome::Detected,
        Err(other) => panic!("unexpected runner error: {other}"),
    }
}

fn demo_keys(nodes: usize) -> Vec<i32> {
    (0..nodes as i32).map(|x| (x * 73 + 7) % 97).collect()
}

#[test]
fn every_fault_class_at_every_node_is_safe() {
    let nodes = 8;
    let keys = demo_keys(nodes);
    let mut detections = 0;
    for kind in FaultKind::ALL {
        for node in 0..nodes as u32 {
            let plan = FaultPlan::new().with_fault(
                NodeId::new(node),
                kind,
                Trigger::from_seq(1),
                u64::from(node) * 31 + 1,
            );
            let outcome = sft_outcome(plan, &keys);
            assert_ne!(
                outcome,
                Outcome::SilentlyWrong,
                "{kind} at P{node} escaped detection"
            );
            if outcome == Outcome::Detected {
                detections += 1;
            }
        }
    }
    assert!(
        detections > FaultKind::ALL.len(),
        "the campaign must actually trip the predicates ({detections} detections)"
    );
}

#[test]
fn corrupt_value_is_always_detected_when_it_changes_data() {
    // A bit-flip fault that manifests mid-run always lands in either the
    // operand or the piggybacked sequence; both paths must be caught.
    let nodes = 16;
    let keys = demo_keys(nodes);
    let mut detected = 0;
    let mut trials = 0;
    for node in 0..nodes as u32 {
        for at in 1..=6u64 {
            let plan = FaultPlan::new().with_fault(
                NodeId::new(node),
                FaultKind::CorruptValue,
                Trigger::at_seq(at),
                at * 131 + u64::from(node),
            );
            trials += 1;
            match sft_outcome(plan, &keys) {
                Outcome::SilentlyWrong => panic!("corruption escaped at P{node}, seq {at}"),
                Outcome::Detected => detected += 1,
                Outcome::Correct => {}
            }
        }
    }
    // A single bit flip is practically always observable.
    assert!(
        detected * 10 >= trials * 9,
        "only {detected}/{trials} corruptions detected"
    );
}

#[test]
fn two_faced_sends_are_caught_by_consistency() {
    let nodes = 16;
    let keys = demo_keys(nodes);
    for node in 0..nodes as u32 {
        let plan = FaultPlan::new().with_fault(
            NodeId::new(node),
            FaultKind::TwoFaced,
            Trigger::from_seq(1),
            u64::from(node) + 77,
        );
        let outcome = sft_outcome(plan, &keys);
        assert_ne!(outcome, Outcome::SilentlyWrong, "two-faced P{node} escaped");
    }
}

#[test]
fn message_loss_fail_stops_via_timeout() {
    let keys = demo_keys(8);
    let plan =
        FaultPlan::new().with_fault(NodeId::new(3), FaultKind::Crash, Trigger::from_seq(2), 0);
    assert_eq!(sft_outcome(plan, &keys), Outcome::Detected);
}

#[test]
fn multi_fault_pairs_stay_safe() {
    // Theorem 3 tolerates up to n−1 faults; on a dim-3 cube that is two
    // faulty nodes.
    let nodes = 8;
    let keys = demo_keys(nodes);
    for a in 0..nodes as u32 {
        for b in (a + 1)..nodes as u32 {
            let plan = FaultPlan::new()
                .with_fault(
                    NodeId::new(a),
                    FaultKind::RandomByzantine,
                    Trigger::from_seq(1),
                    u64::from(a) * 7 + 1,
                )
                .with_fault(
                    NodeId::new(b),
                    FaultKind::RandomByzantine,
                    Trigger::from_seq(1),
                    u64::from(b) * 13 + 5,
                );
            assert_ne!(
                sft_outcome(plan, &keys),
                Outcome::SilentlyWrong,
                "pair (P{a}, P{b}) escaped"
            );
        }
    }
}

#[test]
fn late_faults_in_final_verification_are_caught() {
    // Faults that first manifest during the pure-exchange stage can only
    // corrupt the verification copies — the consistency checks there must
    // catch them (or the fault is harmless to the output).
    let nodes = 8;
    let keys = demo_keys(nodes);
    for node in 0..nodes as u32 {
        // Sends per node: 6 main-loop + 3 final-stage; target the tail.
        for at in 6..=8u64 {
            let plan = FaultPlan::new().with_fault(
                NodeId::new(node),
                FaultKind::CorruptValue,
                Trigger::at_seq(at),
                at ^ u64::from(node),
            );
            assert_ne!(
                sft_outcome(plan, &keys),
                Outcome::SilentlyWrong,
                "late fault at P{node} seq {at} escaped"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_single_fault_never_silently_wrong(
        node in 0u32..16,
        kind_idx in 0usize..FaultKind::ALL.len(),
        from_seq in 1u64..8,
        seed in any::<u64>(),
    ) {
        let keys = demo_keys(16);
        let plan = FaultPlan::new().with_fault(
            NodeId::new(node),
            FaultKind::ALL[kind_idx],
            Trigger::from_seq(from_seq),
            seed,
        );
        prop_assert_ne!(sft_outcome(plan, &keys), Outcome::SilentlyWrong);
    }

    #[test]
    fn random_probabilistic_fault_never_silently_wrong(
        node in 0u32..8,
        probability in 0.1f64..1.0,
        seed in any::<u64>(),
    ) {
        let keys = demo_keys(8);
        let plan = FaultPlan::new().with_fault(
            NodeId::new(node),
            FaultKind::RandomByzantine,
            Trigger { from: 1, until: u64::MAX, probability },
            seed,
        );
        prop_assert_ne!(sft_outcome(plan, &keys), Outcome::SilentlyWrong);
    }
}

#[test]
fn detection_reports_identify_a_predicate() {
    // When a data corruption is detected, the report must carry a
    // meaningful violation code (1..=9), not a bare runtime failure.
    let keys = demo_keys(16);
    let plan =
        FaultPlan::new().with_fault(NodeId::new(2), FaultKind::TwoFaced, Trigger::from_seq(1), 3);
    match SortBuilder::new(Algorithm::FaultTolerant)
        .keys(keys)
        .fault_plan(plan)
        .run()
    {
        Err(SortError::Detected { reports, .. }) => {
            assert!(!reports.is_empty());
            for report in &reports {
                assert!((1..=9).contains(&report.code), "report: {report}");
            }
        }
        other => panic!("expected detection, got {other:?}"),
    }
}
