//! Acceptance tests for the fleet router: N resident sort cubes behind one
//! submit surface — routing spread, degraded-cube deprioritization, spare
//! promotion, failover, and fleet-wide admission control. The paper's
//! contract lifts unchanged from one cube to the fleet: every job is
//! answered with a verified result or a loud error, never a silent lie.

mod common;

use std::time::Duration;

use aoft::faults::{FaultKind, FaultPlan, FaultyTransport, LinkFault, Trigger};
use aoft::hypercube::NodeId;
use aoft::sim::InProc;
use aoft::svc::{FleetConfig, FleetRouter, JobSpec, SubmitError, SvcConfig};

const DIM: u32 = 3;

fn job_keys(salt: i64) -> Vec<i32> {
    (0..32i64)
        .map(|x| (((x + salt).wrapping_mul(2_654_435_761)) % 997) as i32)
        .collect()
}

fn cube_config() -> SvcConfig {
    SvcConfig::new(DIM)
        .max_attempts(4)
        .quarantine_after(1)
        .backoff(Duration::from_millis(1), Duration::from_millis(10))
        .recv_timeout(Duration::from_millis(300))
}

/// A clean stream round-robins across every healthy active cube.
#[test]
fn router_spreads_a_clean_stream_across_cubes() {
    let router = FleetRouter::start(FleetConfig::new(cube_config(), 3), |_| Ok(InProc::new()))
        .expect("fleet starts");
    for index in 0..12i64 {
        let keys = job_keys(index);
        let report = router
            .submit(JobSpec::new(keys.clone()))
            .expect("admitted")
            .wait()
            .expect("clean job completes");
        assert_eq!(report.report.output, common::sorted(&keys));
        assert_eq!(report.reroutes, 0, "clean cubes never fail over");
    }
    let metrics = router.metrics();
    assert_eq!(metrics.cubes, 3);
    assert_eq!(metrics.jobs_routed.iter().sum::<u64>(), 12);
    assert!(
        metrics.jobs_routed.iter().all(|&n| n == 4),
        "round-robin must spread 12 jobs evenly over 3 cubes: {:?}",
        metrics.jobs_routed
    );
    router.shutdown();
}

/// A cube whose diagnosis quarantined a node is deprioritized: later jobs
/// route around it, and a standby spare is promoted to restore capacity.
#[test]
fn degraded_cube_is_deprioritized_and_a_spare_promoted() {
    let router = FleetRouter::start(FleetConfig::new(cube_config(), 2).spares(1), |_| {
        Ok(InProc::new())
    })
    .expect("fleet starts");

    // Pin a model-level crash onto cube 1: node 5 goes fail-silent from its
    // third send. The cube recovers the job itself (degraded retry) but its
    // quarantine is no longer empty — the router must now treat it as
    // shrunken hardware.
    let keys = job_keys(99);
    let plan =
        FaultPlan::new().with_fault(NodeId::new(5), FaultKind::Crash, Trigger::from_seq(2), 7);
    let report = router
        .submit_to(1, JobSpec::new(keys.clone()).fault_plan(plan))
        .expect("pinned job admitted")
        .wait()
        .expect("the cube recovers its own transient");
    assert_eq!(report.report.output, common::sorted(&keys));
    assert!(report.report.recovered(), "the crash must cost a retry");

    let routed_to_degraded_before = router.metrics().jobs_routed[1];
    for index in 0..8i64 {
        let keys = job_keys(index);
        let report = router
            .submit(JobSpec::new(keys.clone()))
            .expect("admitted")
            .wait()
            .expect("clean job completes");
        assert_eq!(report.report.output, common::sorted(&keys));
        assert_ne!(report.cube, 1, "the degraded cube must not take clean work");
    }

    let metrics = router.metrics();
    assert!(
        metrics.degraded.contains(&1),
        "cube 1 carries a quarantine and must report degraded: {:?}",
        metrics.degraded
    );
    assert!(
        metrics.spares_promoted >= 1,
        "the spare must join the rotation once cube 1 degrades"
    );
    assert_eq!(
        router.metrics().jobs_routed[1],
        routed_to_degraded_before,
        "no clean job may land on the deprioritized cube"
    );
    router.shutdown();
}

/// A cube-level job failure (attempt budget exhausted on dead hardware)
/// fails over: the router resubmits to a healthy cube and the job still
/// completes correctly.
#[test]
fn exhausted_cube_fails_over_to_a_healthy_one() {
    // Cube 1's transport kills node 5 from its first send; the cube gets a
    // single attempt, so its failure surfaces at the fleet layer.
    let cube = cube_config().max_attempts(1);
    let router = FleetRouter::start(FleetConfig::new(cube, 2), |i| {
        let mut faulty = FaultyTransport::new(InProc::new(), 0xFA11 + i as u64);
        if i == 1 {
            faulty = faulty.fault_sender(
                5,
                LinkFault {
                    kill_after: Some(0),
                    ..LinkFault::default()
                },
            );
        }
        Ok(faulty)
    })
    .expect("fleet starts");

    let keys = job_keys(5);
    let report = router
        .submit_to(1, JobSpec::new(keys.clone()))
        .expect("pinned job admitted")
        .wait()
        .expect("the fleet recovers what the cube cannot");
    assert_eq!(report.report.output, common::sorted(&keys));
    assert_eq!(report.reroutes, 1, "exactly one reroute for one dead cube");
    assert_ne!(report.cube, 1, "the job must finish on a healthy cube");

    let metrics = router.metrics();
    assert!(metrics.failovers >= 1, "the reroute must be counted");
    assert!(
        metrics.degraded.contains(&1),
        "the dead cube's quarantine must mark it degraded: {:?}",
        metrics.degraded
    );
    router.shutdown();
}

/// Admission control aggregates: when every cube's queue is full the fleet
/// reports one backpressure signal whose depth is the fleet-wide bound.
#[test]
fn backpressure_aggregates_across_every_cube() {
    // Tiny queues, one worker per cube, deliberately chunky jobs: a burst
    // must overrun the whole fleet's admission capacity.
    let cube = cube_config().queue_depth(1).workers(1);
    let depth_per_cube = 1usize;
    let router =
        FleetRouter::start(FleetConfig::new(cube, 2), |_| Ok(InProc::new())).expect("fleet starts");

    let keys: Vec<i32> = (0..2048i32).map(|x| x.wrapping_mul(-37) % 4096).collect();
    let mut admitted = Vec::new();
    let mut refused = None;
    for _ in 0..32 {
        match router.submit(JobSpec::new(keys.clone())) {
            Ok(handle) => admitted.push(handle),
            Err(SubmitError::Backpressure { depth }) => {
                refused = Some(depth);
                break;
            }
            Err(other) => panic!("only backpressure may refuse a clean burst: {other}"),
        }
    }
    let depth = refused.expect("a 32-job burst must overrun 2 cubes × queue depth 1");
    assert_eq!(
        depth,
        2 * depth_per_cube,
        "the reported depth is the fleet-wide bound, not one cube's"
    );

    // Backpressure refuses loudly but loses nothing already admitted.
    let expected = common::sorted(&keys);
    for handle in admitted {
        let report = handle.wait().expect("admitted jobs complete");
        assert_eq!(report.report.output, expected);
    }
    router.shutdown();
}

/// The nightly fleet soak: stream `AOFT_FLEET_JOBS` jobs (default 10 000)
/// through a 2-active + 1-spare fleet, every 25th under an injected
/// model-level crash, and verify every single answer. `AOFT_BATCH_MAX`
/// (default 16) sets each cube's micro-batcher width, so the soak also
/// exercises coalesced composite-key attempts under sporadic faults; set it
/// to 1 to soak the unbatched path. `AOFT_FLEET_BACKEND` picks each cube's
/// medium: `inproc` (default) or `mux` for loopback peer-pair TCP sessions,
/// so nightly soaks the multiplexed transport under the same faulted
/// stream. With `AOFT_SOAK_JOURNAL=<path>` the run also writes the
/// observability event journal there, and with `AOFT_FLEET_SCRAPE=<path>`
/// the final metrics scrape; nightly archives both as artifacts.
#[test]
#[ignore = "long-running fleet soak; nightly runs it via -- --ignored"]
fn fleet_soak_streams_ten_thousand_jobs() {
    let backend = std::env::var("AOFT_FLEET_BACKEND").unwrap_or_else(|_| "inproc".into());
    match backend.as_str() {
        "mux" => run_fleet_soak(|_| {
            let transport = aoft::net::MuxTransport::bind(aoft::net::MuxConfig::default())?;
            let addr = transport.local_addr();
            for label in 0..(1u32 << DIM) {
                transport.set_peer(label, addr);
            }
            Ok(transport)
        }),
        "inproc" => run_fleet_soak(|_| Ok(InProc::new())),
        other => panic!("AOFT_FLEET_BACKEND={other} is not a soak backend (inproc | mux)"),
    }
}

fn run_fleet_soak<T, F>(make_transport: F)
where
    T: aoft::sim::Transport<aoft::sim::Packet<aoft::sort::Msg>> + Send + Sync + 'static,
    F: FnMut(usize) -> Result<T, aoft::net::NetError>,
{
    let jobs: usize = std::env::var("AOFT_FLEET_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let batch_max: usize = std::env::var("AOFT_BATCH_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    if let Ok(path) = std::env::var("AOFT_SOAK_JOURNAL") {
        aoft::obs::install_journal(&path).expect("journal path is writable");
    }

    // Sporadic transient faults, like the single-cube soak: quarantine is
    // disabled (the sentinel) because rotating transients would otherwise
    // evict healthy hardware job after job.
    let cube = SvcConfig::new(DIM)
        .workers(2)
        .queue_depth(128)
        .max_attempts(4)
        .quarantine_after(u32::MAX)
        .backoff(Duration::from_millis(1), Duration::from_millis(10))
        .recv_timeout(Duration::from_millis(300))
        .batch_max(batch_max)
        .batch_flush(Duration::from_millis(1));
    let router = FleetRouter::start(FleetConfig::new(cube, 2).spares(1), make_transport)
        .expect("fleet starts");

    let start = std::time::Instant::now();
    let mut submitted = 0usize;
    let mut faulted = 0usize;
    while submitted < jobs {
        let wave = (jobs - submitted).min(64);
        let mut handles = Vec::with_capacity(wave);
        for offset in 0..wave {
            let index = (submitted + offset) as i64;
            let keys = job_keys(index);
            let mut spec = JobSpec::new(keys.clone());
            if index % 25 == 0 {
                faulted += 1;
                let node = NodeId::new((index / 25) as u32 % (1 << DIM));
                spec = spec.fault_plan(FaultPlan::new().with_fault(
                    node,
                    FaultKind::Crash,
                    Trigger::window(2, 4),
                    index as u64,
                ));
            }
            handles.push((keys, router.submit(spec).expect("waves fit the queues")));
        }
        for (keys, handle) in handles {
            let report = handle
                .wait()
                .unwrap_or_else(|err| panic!("soak job must complete loudly or not at all: {err}"));
            assert_eq!(
                report.report.output,
                common::sorted(&keys),
                "soak job delivered a silently wrong result"
            );
        }
        submitted += wave;
    }

    let metrics = router.metrics();
    let completed: u64 = metrics.per_cube.iter().map(|m| m.jobs_completed).sum();
    let recovered: u64 = metrics.per_cube.iter().map(|m| m.recovered_jobs).sum();
    assert_eq!(metrics.jobs_routed.iter().sum::<u64>(), jobs as u64);
    assert!(completed >= jobs as u64, "no job may be lost");
    assert!(
        recovered >= 1,
        "injected crashes must exercise the recovery loop"
    );
    println!(
        "fleet soak: {jobs} jobs ({faulted} faulted) over {} cubes in {:?} — \
         routed {:?}, {recovered} recovered, {} failover(s)",
        metrics.cubes,
        start.elapsed(),
        metrics.jobs_routed,
        metrics.failovers,
    );
    let scrape = aoft::obs::global().render_prometheus();
    if let Ok(path) = std::env::var("AOFT_FLEET_SCRAPE") {
        std::fs::write(&path, &scrape).expect("scrape path is writable");
    }
    println!("{scrape}");
    router.shutdown();
}
