//! Acceptance tests for the multiplexed transport: the same `S_FT`
//! schedule and service recovery as the per-link backends, but with one
//! physical TCP session per *peer pair* — asserted against
//! `/proc/self/fd`, not taken on faith.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aoft::faults::{FaultyTransport, LinkFault};
use aoft::net::{MuxConfig, MuxTransport};
use aoft::sim::Transport;
use aoft::sort::{Algorithm, SortBuilder, SortError};
use aoft::svc::{JobSpec, SortService, SvcConfig};

fn mux(nodes: u32) -> MuxTransport {
    mux_with(nodes, MuxConfig::default())
}

fn mux_with(nodes: u32, config: MuxConfig) -> MuxTransport {
    let transport = MuxTransport::bind(config).expect("bind loopback mux");
    let addr = transport.local_addr();
    for label in 0..nodes {
        transport.set_peer(label, addr);
    }
    transport
}

fn builder(keys: Vec<i32>, nodes: usize) -> SortBuilder {
    SortBuilder::new(Algorithm::FaultTolerant)
        .keys(keys)
        .nodes(nodes)
        .recv_timeout(Duration::from_millis(800))
}

/// Open file descriptors in this process, via the kernel's own ledger.
fn live_fds() -> Option<usize> {
    std::fs::read_dir("/proc/self/fd")
        .ok()
        .map(|dir| dir.count())
}

/// `S_FT` sorts over the mux backend exactly as over the per-link ones.
#[test]
fn sft_sorts_d3_cube_over_mux() {
    let keys: Vec<i32> = (0..32i32).map(|x| x.wrapping_mul(-97) % 50).collect();
    let report = builder(keys.clone(), 8)
        .run_on(mux(8))
        .expect("clean mux run");
    assert_eq!(report.output(), common::sorted(&keys).as_slice());
    assert_eq!(report.blocks().len(), 8, "d=3 cube has 8 nodes");
}

/// The tentpole claim, measured: a d=6 cube has 384 directed links. The
/// per-link backends open one TCP connection each — 384 connections, 768
/// loopback fds. The mux backend opens one connection per *peer pair*:
/// 192 connections, and the kernel's fd table proves it.
#[test]
fn d6_cube_uses_one_socket_per_peer_pair() {
    let Some(base) = live_fds() else {
        eprintln!("no /proc/self/fd on this platform; skipping");
        return;
    };

    // Generous liveness margins, as in the reactor d=6 test: 64 compute
    // threads on a small CI box can stall a servicer pass long enough for
    // the default 500 ms silence window to fire spuriously.
    let config = MuxConfig {
        connect_timeout: Duration::from_secs(10),
        heartbeat_interval: Duration::from_millis(100),
        heartbeat_timeout: Duration::from_secs(30),
        ..MuxConfig::default()
    };
    let transport = mux_with(64, config);

    // Sample the fd count while the sort runs; keep the peak.
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut peak = 0usize;
            while !stop.load(Ordering::Relaxed) {
                peak = peak.max(live_fds().unwrap_or(0));
                std::thread::sleep(Duration::from_millis(5));
            }
            peak
        })
    };

    let keys: Vec<i32> = (0..128i32).map(|x| x.wrapping_mul(-61) % 400).collect();
    let report = builder(keys.clone(), 64)
        .recv_timeout(Duration::from_secs(10))
        .run_on(transport)
        .expect("clean d=6 mux run");
    stop.store(true, Ordering::Relaxed);
    let peak = sampler.join().expect("sampler joins");

    assert_eq!(report.output(), common::sorted(&keys).as_slice());
    assert_eq!(report.blocks().len(), 64, "d=6 cube has 64 nodes");

    // A d=6 cube has 64·6/2 = 192 peer pairs. On loopback each pair's one
    // connection holds two fds (both ends live in this process), plus the
    // listener and harness slack. Per-link would be 384 connections.
    let pairs = 64 * 6 / 2;
    let extra = peak.saturating_sub(base);
    let budget = 2 * pairs + 32;
    assert!(
        extra <= budget,
        "fd peak {peak} (base {base}, extra {extra}) exceeds {budget}; \
         socket count is not O(peer pairs)"
    );
    assert!(
        extra < 2 * 384,
        "extra {extra} is in socket-per-link territory (2·384 = 768)"
    );
}

/// Session ends are O(peer pairs): every link of a pair, both directions
/// and all tags, resolves to the same loopback session pair.
#[test]
fn session_count_is_per_pair_not_per_link() {
    let transport = mux(4);
    let deadline = Duration::from_secs(5);
    let mut endpoints: Vec<Box<dyn aoft::net::LinkTx<u64>>> = Vec::new();
    // 8 directed links across 2 peer pairs (0,1) and (2,3).
    for (from, to) in [(0u32, 1u32), (1, 0), (2, 3), (3, 2)] {
        for tag in 0..2u8 {
            let link = aoft::net::LinkId { from, to, tag };
            endpoints.push(
                Transport::<u64>::connect_tx(&transport, link, deadline).expect("connect link"),
            );
        }
    }
    assert_eq!(
        transport.session_count(),
        4,
        "2 peer pairs = 4 loopback session ends, regardless of link count"
    );
}

/// A fail-silent peer over the mux backend fail-stops with receiver-side
/// missing-message diagnostics — the identical contract the per-link
/// backends honour (node death is a *logical* silence; the shared session
/// stays up, so detection happens at the protocol layer, not the socket).
#[test]
fn killed_peer_fail_stops_with_error_report_over_mux() {
    let keys: Vec<i32> = (0..32).collect();
    let kill = LinkFault {
        kill_after: Some(2),
        ..LinkFault::default()
    };
    let faulty = FaultyTransport::new(mux(8), 3).fault_sender(5, kill);
    match builder(keys, 8).run_on(faulty) {
        Ok(_) => panic!("a silenced peer must not produce a sorted result"),
        Err(SortError::Detected { reports, .. }) => {
            assert!(!reports.is_empty(), "fail-stop must carry diagnostics");
            assert!(
                reports.iter().any(|r| r.detail.contains("no message")),
                "reports should name the starved receive: {reports:?}"
            );
        }
        Err(other) => panic!("expected Detected, got {other:?}"),
    }
}

/// Full service recovery over the mux backend: a node dead from its first
/// send is diagnosed, quarantined and retried around — and the sessions
/// survive across attempts (that persistence is the transport's perf win).
#[test]
fn service_recovers_dead_node_over_mux() {
    let kill = LinkFault {
        kill_after: Some(0),
        ..LinkFault::default()
    };
    let faulty = FaultyTransport::new(mux(8), 0xDEAD5).fault_sender(5, kill);
    let config = SvcConfig::new(3)
        .max_attempts(4)
        .quarantine_after(1)
        .backoff(Duration::from_millis(1), Duration::from_millis(20))
        .recv_timeout(Duration::from_millis(800));
    let service = SortService::start(config, faulty).expect("service starts");
    let keys: Vec<i32> = (0..32i32).map(|x| x.wrapping_mul(-73) % 40).collect();
    let report = service
        .submit(JobSpec::new(keys.clone()))
        .expect("admitted")
        .wait()
        .expect("recovers loudly, never silently wrong");
    assert_eq!(report.output, common::sorted(&keys));
    assert!(
        report.recovered(),
        "a dead-from-first-send node must cost at least one retry"
    );
    let metrics = service.metrics();
    assert!(
        metrics.quarantined.contains(&5),
        "diagnosis must quarantine the dead node: {:?}",
        metrics.quarantined
    );
    service.shutdown();
}
