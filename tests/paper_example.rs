//! The paper pinned down: Figure 5's worked example, the complexity claims
//! of Section 5, and the message-complexity headline of Section 3.

use aoft::sim::Ticks;
use aoft::sort::{bitonic, Algorithm, SortBuilder};

const FIGURE5_INPUT: [i32; 8] = [10, 8, 3, 9, 4, 2, 7, 5];
const FIGURE5_OUTPUT: [i32; 8] = [2, 3, 4, 5, 7, 8, 9, 10];

#[test]
fn figure5_input_sorts_on_all_algorithms() {
    for algorithm in Algorithm::ALL {
        let report = SortBuilder::new(algorithm)
            .keys(FIGURE5_INPUT.to_vec())
            .run()
            .unwrap_or_else(|e| panic!("{algorithm}: {e}"));
        assert_eq!(report.output(), FIGURE5_OUTPUT, "{algorithm}");
    }
}

#[test]
fn figure5_stage_intermediates_match_lemma2() {
    // Lemma 2: after stage i, every subcube of size 2^{i+2} holds a bitonic
    // sequence. Reproduce the in-memory schedule and check each stage.
    let mut values = FIGURE5_INPUT.to_vec();
    for stage in 0..3u32 {
        let span = 1usize << (stage + 1);
        for (idx, chunk) in values.chunks_mut(span).enumerate() {
            let start = aoft::hypercube::NodeId::new((idx * span) as u32);
            let sub = aoft::hypercube::Subcube::home(stage + 1, start);
            bitonic::bitonic_sort(chunk, aoft::sort::subcube_ascending(sub));
        }
        let merged_span = (2 * span).min(values.len());
        for chunk in values.chunks(merged_span) {
            assert!(
                bitonic::is_bitonic(chunk),
                "stage {stage}: {chunk:?} not bitonic"
            );
        }
    }
    assert_eq!(values, FIGURE5_OUTPUT);
}

#[test]
fn snr_message_count_is_n_choose_schedule() {
    // S_NR: each node sends exactly n(n+1)/2 messages (one per (i,j) step).
    for dim in 1..=5u32 {
        let nodes = 1usize << dim;
        let keys: Vec<i32> = (0..nodes as i32).rev().collect();
        let report = SortBuilder::new(Algorithm::NonRedundant)
            .keys(keys)
            .run()
            .unwrap();
        let expected_per_node = u64::from(dim) * (u64::from(dim) + 1) / 2;
        let total = report.metrics().node_total().msgs_sent;
        assert_eq!(total, expected_per_node * nodes as u64, "dim {dim}");
    }
}

#[test]
fn sft_adds_only_the_final_verification_messages() {
    // Section 3: piggybacking gives "no increase in message complexity";
    // the only extra messages are the final pure-exchange stage (n per
    // node).
    for dim in 1..=5u32 {
        let nodes = 1usize << dim;
        let keys: Vec<i32> = (0..nodes as i32).rev().collect();
        let snr = SortBuilder::new(Algorithm::NonRedundant)
            .keys(keys.clone())
            .run()
            .unwrap();
        let sft = SortBuilder::new(Algorithm::FaultTolerant)
            .keys(keys)
            .run()
            .unwrap();
        let extra = sft.metrics().node_total().msgs_sent - snr.metrics().node_total().msgs_sent;
        assert_eq!(extra, u64::from(dim) * nodes as u64, "dim {dim}");
    }
}

#[test]
fn sft_word_volume_grows_like_n_log_n() {
    // Theorem 4's communication bound: total piggyback volume is
    // Θ(N·log₂N) words machine-wide per node... i.e. Θ(N²·log N) summed.
    // Check the per-node critical-path volume ratio between successive
    // machine sizes approaches 2·(n+1)/n (doubling N roughly doubles the
    // per-node volume).
    let mut volumes = Vec::new();
    for dim in 2..=6u32 {
        let nodes = 1usize << dim;
        let keys: Vec<i32> = (0..nodes as i32).rev().collect();
        let report = SortBuilder::new(Algorithm::FaultTolerant)
            .keys(keys)
            .run()
            .unwrap();
        let max_words = report
            .metrics()
            .nodes
            .iter()
            .map(|m| m.words_sent)
            .max()
            .unwrap();
        volumes.push(max_words as f64);
    }
    for w in volumes.windows(2) {
        let growth = w[1] / w[0];
        assert!(
            (1.6..=2.9).contains(&growth),
            "per-node word volume should roughly double per dimension: {growth}"
        );
    }
}

#[test]
fn sft_compute_time_grows_linearly_in_n() {
    // Theorem 4: S_FT computation is O(N) per node. Doubling the machine
    // should roughly double critical-path compute time (not quadruple it).
    let mut comps = Vec::new();
    for dim in 3..=7u32 {
        let nodes = 1usize << dim;
        let keys: Vec<i32> = (0..nodes as i32).rev().collect();
        let report = SortBuilder::new(Algorithm::FaultTolerant)
            .keys(keys)
            .run()
            .unwrap();
        comps.push(report.metrics().max_node_compute_time().as_ticks_f64());
    }
    for w in comps.windows(2) {
        let growth = w[1] / w[0];
        assert!(
            (1.5..=2.6).contains(&growth),
            "compute should scale ~linearly with N: growth {growth}"
        );
    }
}

#[test]
fn virtual_times_are_exactly_reproducible() {
    let run = || {
        SortBuilder::new(Algorithm::FaultTolerant)
            .keys(FIGURE5_INPUT.to_vec())
            .run()
            .unwrap()
            .elapsed()
    };
    let first = run();
    assert!(first > Ticks::ZERO);
    for _ in 0..3 {
        assert_eq!(run(), first);
    }
}

#[test]
fn all_nodes_see_the_final_exchange() {
    // With tracing on, every node must log n final-stage sends of pure-LBS
    // messages (Msg::Lbs) — the paper's trailing verification loop.
    let report = SortBuilder::new(Algorithm::FaultTolerant)
        .keys(FIGURE5_INPUT.to_vec())
        .trace(true)
        .run()
        .unwrap();
    for node in 0..8u32 {
        let sends = report
            .trace()
            .for_node(aoft::hypercube::NodeId::new(node))
            .filter(|e| matches!(e.kind, aoft::sim::EventKind::Send { .. }))
            .count();
        assert_eq!(sends, 6 + 3, "P{node}: 6 main-loop + 3 final sends");
    }
}
