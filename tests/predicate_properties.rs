//! Property-based tests of the constraint-predicate building blocks: the
//! invariants the correctness argument (Lemmas 1–6) rests on.

use aoft::hypercube::{NodeId, Subcube};
use aoft::sort::predicates::{is_merge_of, vect_mask, vect_mask_before, vect_mask_recursive};
use aoft::sort::{bitonic, Block};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `is_merge_of` is exactly multiset equality for sorted inputs.
    #[test]
    fn merge_of_iff_multiset_equal(
        mut a in prop::collection::vec(-50i32..50, 0..20),
        mut b in prop::collection::vec(-50i32..50, 0..20),
        shuffle_seed in any::<u64>(),
    ) {
        a.sort_unstable();
        b.sort_unstable();
        // True merge: must pass.
        let mut target: Vec<i32> = a.iter().chain(b.iter()).copied().collect();
        target.sort_unstable();
        prop_assert!(is_merge_of(&target, &a, &b));

        // Perturb one element: must fail (multiset changed).
        if !target.is_empty() {
            let idx = (shuffle_seed as usize) % target.len();
            let mut bad = target.clone();
            bad[idx] = bad[idx].wrapping_add(1);
            bad.sort_unstable();
            prop_assert!(!is_merge_of(&bad, &a, &b));
        }
    }

    /// Lemma 1: one compare-exchange sweep splits a bitonic sequence into
    /// two bitonic halves with every low element ≤ every high element.
    #[test]
    fn half_clean_lemma1(
        rise in prop::collection::vec(-100i32..100, 1..17),
        fall in prop::collection::vec(-100i32..100, 1..16),
    ) {
        // Build a bitonic sequence of power-of-two length.
        let mut seq: Vec<i32> = Vec::new();
        let mut rise = rise;
        rise.sort_unstable();
        let mut fall = fall;
        fall.sort_unstable();
        fall.reverse();
        seq.extend(&rise);
        seq.extend(&fall);
        let len = seq.len().next_power_of_two();
        let pad = seq.last().copied().unwrap_or(0);
        while seq.len() < len {
            seq.push(pad.saturating_sub(1).max(i32::MIN + 1) - 1);
        }
        prop_assume!(bitonic::is_bitonic(&seq));

        bitonic::half_clean(&mut seq, true);
        let half = seq.len() / 2;
        {
            // The halves are bitonic in the circular sense (the invariant
            // the recursion actually needs) and bound each other.
            let (low, high) = seq.split_at(half);
            prop_assert!(bitonic::is_circular_bitonic(low), "{low:?}");
            prop_assert!(bitonic::is_circular_bitonic(high), "{high:?}");
            let max_low = low.iter().max().unwrap();
            let min_high = high.iter().min().unwrap();
            prop_assert!(max_low <= min_high);
        }
        // And recursive merging finishes the sort.
        let mut expected = seq.clone();
        expected.sort_unstable();
        bitonic::bitonic_merge(&mut seq[..half], true);
        bitonic::bitonic_merge(&mut seq[half..], true);
        prop_assert_eq!(seq, expected);
    }

    /// The bitonic network sorts any input (oblivious correctness).
    #[test]
    fn bitonic_sort_oracle(
        mut keys in prop::collection::vec(any::<i32>(), 0..7)
            .prop_map(|mut v| { v.resize(v.len().next_power_of_two().max(1), 0); v }),
        ascending in any::<bool>(),
    ) {
        let mut expected = keys.clone();
        expected.sort_unstable();
        if !ascending {
            expected.reverse();
        }
        bitonic::bitonic_sort(&mut keys, ascending);
        prop_assert_eq!(keys, expected);
    }

    /// Lemma 3: the closed-form `vect_mask` equals the paper's recursion.
    #[test]
    fn vect_mask_closed_equals_recursive(
        stage in 0u32..6,
        step_off in 0u32..6,
        node_raw in 0u32..64,
    ) {
        let step = step_off.min(stage);
        let node = NodeId::new(node_raw);
        prop_assert_eq!(
            vect_mask(64, stage, step, node),
            vect_mask_recursive(64, stage, step, node)
        );
    }

    /// The holdings mask is always confined to the stage's home subcube and
    /// grows monotonically as the exchange descends the dimensions.
    #[test]
    fn vect_mask_confined_and_monotone(
        stage in 0u32..6,
        node_raw in 0u32..64,
    ) {
        let node = NodeId::new(node_raw);
        let home = Subcube::home(stage + 1, node);
        let mut previous = vect_mask_before(64, stage, stage, node);
        for step in (0..=stage).rev() {
            let after = vect_mask(64, stage, step, node);
            prop_assert!(previous.is_subset_of(&after));
            for member in after.iter() {
                prop_assert!(home.contains(member));
            }
            if step > 0 {
                prop_assert_eq!(vect_mask_before(64, stage, step - 1, node), after.clone());
            }
            previous = after;
        }
        prop_assert_eq!(previous.len(), home.len(), "full coverage at step 0");
    }

    /// Merge-split conserves the multiset and orders the halves.
    #[test]
    fn merge_split_conserves_and_orders(
        a in prop::collection::vec(any::<i32>(), 1..32),
        b_seed in any::<u64>(),
    ) {
        let m = a.len();
        let b: Vec<i32> = a
            .iter()
            .enumerate()
            .map(|(i, &x)| x.wrapping_add(((b_seed >> (i % 48)) & 0xFF) as i32 - 128))
            .collect();
        let block_a = Block::from_unsorted(a.clone());
        let block_b = Block::from_unsorted(b.clone());
        let (low, high) = block_a.merge_split(&block_b);

        prop_assert_eq!(low.len(), m);
        prop_assert_eq!(high.len(), m);
        prop_assert!(low.is_sorted());
        prop_assert!(high.is_sorted());
        prop_assert!(low.max() <= high.min());

        let mut merged: Vec<i32> = low.keys().iter().chain(high.keys()).copied().collect();
        merged.sort_unstable();
        let mut all: Vec<i32> = a.into_iter().chain(b).collect();
        all.sort_unstable();
        prop_assert_eq!(merged, all);
    }
}

#[test]
fn vect_mask_sizes_match_lemma3() {
    // |vect_mask(i, j)| = 2^{i-j+1}.
    for stage in 0..5u32 {
        for step in 0..=stage {
            let mask = vect_mask(64, stage, step, NodeId::new(37));
            assert_eq!(mask.len(), 1 << (stage - step + 1));
        }
    }
}
