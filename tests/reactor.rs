//! Acceptance tests for the nonblocking reactor transport: the same `S_FT`
//! schedule and service recovery as the threaded TCP backend, but with
//! transport threads O(reactors) instead of O(links) — asserted against
//! `/proc/self/task`, not taken on faith.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aoft::faults::{FaultyTransport, LinkFault};
use aoft::net::CancelToken;
use aoft::sim::{Packet, ReactorConfig, ReactorTransport, TcpConfig, TcpTransport, Transport};
use aoft::sort::{Algorithm, Msg, SortBuilder, SortError};
use aoft::svc::{JobSpec, SortService, SvcConfig};

fn reactor(nodes: u32) -> ReactorTransport {
    reactor_with(nodes, ReactorConfig::default())
}

fn reactor_with(nodes: u32, config: ReactorConfig) -> ReactorTransport {
    let transport = ReactorTransport::bind(config).expect("bind loopback reactor");
    let addr = transport.local_addr();
    for label in 0..nodes {
        transport.set_peer(label, addr);
    }
    transport
}

fn builder(keys: Vec<i32>, nodes: usize) -> SortBuilder {
    SortBuilder::new(Algorithm::FaultTolerant)
        .keys(keys)
        .nodes(nodes)
        .recv_timeout(Duration::from_millis(800))
}

/// Live threads in this process, via the kernel's own ledger.
fn live_threads() -> Option<usize> {
    std::fs::read_dir("/proc/self/task")
        .ok()
        .map(|dir| dir.count())
}

/// `S_FT` sorts over the reactor backend exactly as over the threaded one.
#[test]
fn sft_sorts_d3_cube_over_reactor_tcp() {
    let keys: Vec<i32> = (0..32i32).map(|x| x.wrapping_mul(-97) % 50).collect();
    let report = builder(keys.clone(), 8)
        .run_on(reactor(8))
        .expect("clean reactor run");
    assert_eq!(report.output(), common::sorted(&keys).as_slice());
    assert_eq!(report.blocks().len(), 8, "d=3 cube has 8 nodes");
}

/// The tentpole claim, measured: a d=6 cube has 384 directed links, which
/// costs the threaded backend 768 dedicated transport threads. The reactor
/// multiplexes all of them onto its fixed pool, so the process peak stays
/// around nodes + reactors — an order of magnitude below thread-per-link.
#[test]
fn d6_cube_runs_on_a_bounded_thread_pool() {
    let Some(base) = live_threads() else {
        eprintln!("no /proc/self/task on this platform; skipping");
        return;
    };

    // Generous liveness margins: 64 compute threads on a small CI box can
    // stall a reactor pass long enough for the default 500 ms silence
    // window to fire spuriously. The thread-count claim needs an honest
    // run, not a tight failure detector.
    let config = ReactorConfig {
        connect_timeout: Duration::from_secs(10),
        heartbeat_interval: Duration::from_millis(100),
        heartbeat_timeout: Duration::from_secs(30),
        ..ReactorConfig::default()
    };
    let reactors = config.reactors;
    let transport = reactor_with(64, config);

    // Sample the task count while the sort runs; keep the peak.
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut peak = 0usize;
            while !stop.load(Ordering::Relaxed) {
                peak = peak.max(live_threads().unwrap_or(0));
                std::thread::sleep(Duration::from_millis(5));
            }
            peak
        })
    };

    let keys: Vec<i32> = (0..128i32).map(|x| x.wrapping_mul(-61) % 400).collect();
    let report = builder(keys.clone(), 64)
        .recv_timeout(Duration::from_secs(10))
        .run_on(transport)
        .expect("clean d=6 reactor run");
    stop.store(true, Ordering::Relaxed);
    let peak = sampler.join().expect("sampler joins");

    assert_eq!(report.output(), common::sorted(&keys).as_slice());
    assert_eq!(report.blocks().len(), 64, "d=6 cube has 64 nodes");

    // Peak extra threads ≈ 64 node threads + the reactor pool + harness
    // slack. The threaded backend's *transport alone* would add 768.
    let extra = peak.saturating_sub(base);
    let budget = 64 + reactors + 32;
    assert!(
        extra <= budget,
        "thread peak {peak} (base {base}, extra {extra}) exceeds {budget}; \
         transport threads are not O(reactors)"
    );
    assert!(
        extra < 2 * 64 * 6,
        "extra {extra} is in thread-per-link territory (2·384 = 768)"
    );
}

/// A machine-wide cancel interrupts a receive blocked on a reactor link
/// promptly, even while the reactor's timer wheel keeps heartbeats and
/// dead-checks live on the same thread.
#[test]
fn cancel_interrupts_reactor_recv_under_live_timers() {
    let transport = reactor(2);
    let link = aoft::net::LinkId {
        from: 0,
        to: 1,
        tag: 0,
    };
    let _tx = Transport::<Packet<Msg>>::connect_tx(&transport, link, Duration::from_secs(2))
        .expect("dial");
    let rx = Transport::<Packet<Msg>>::connect_rx(&transport, link, Duration::from_secs(2))
        .expect("claim");

    let cancel = CancelToken::new();
    let trip = cancel.clone();
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        trip.cancel();
    });
    let start = Instant::now();
    let err = rx
        .recv_deadline(Duration::from_secs(30), &cancel)
        .expect_err("nothing was sent");
    assert!(
        matches!(err, aoft::net::NetError::Cancelled),
        "expected Cancelled, got {err:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "cancel took {:?}; the poll ramp is broken",
        start.elapsed()
    );
}

/// Parity with `tcp_transport.rs`: a fail-silent peer over the reactor
/// backend fail-stops with receiver-side missing-message diagnostics — the
/// identical contract the threaded backend honours.
#[test]
fn killed_peer_fail_stops_with_error_report_over_reactor() {
    let keys: Vec<i32> = (0..32).collect();
    let kill = LinkFault {
        kill_after: Some(2),
        ..LinkFault::default()
    };
    let faulty = FaultyTransport::new(reactor(8), 3).fault_sender(5, kill);
    match builder(keys, 8).run_on(faulty) {
        Ok(_) => panic!("a silenced peer must not produce a sorted result"),
        Err(SortError::Detected { reports, .. }) => {
            assert!(!reports.is_empty(), "fail-stop must carry diagnostics");
            assert!(
                reports.iter().any(|r| r.detail.contains("no message")),
                "reports should name the starved receive: {reports:?}"
            );
        }
        Err(other) => panic!("expected Detected, got {other:?}"),
    }
}

/// Full recovery parity, both backends side by side: the same node-5 kill
/// under a resident service recovers on each — quarantine plus degraded
/// retry — and both deliver the same verified output.
#[test]
fn service_recovery_parity_between_reactor_and_threaded_backends() {
    fn recover<T>(transport: T) -> (Vec<i32>, Vec<u32>)
    where
        T: Transport<Packet<Msg>> + Send + Sync + 'static,
    {
        let kill = LinkFault {
            kill_after: Some(0),
            ..LinkFault::default()
        };
        let faulty = FaultyTransport::new(transport, 0xDEAD5).fault_sender(5, kill);
        let config = SvcConfig::new(3)
            .max_attempts(4)
            .quarantine_after(1)
            .backoff(Duration::from_millis(1), Duration::from_millis(20))
            .recv_timeout(Duration::from_millis(800));
        let service = SortService::start(config, faulty).expect("service starts");
        let keys: Vec<i32> = (0..32i32).map(|x| x.wrapping_mul(-73) % 40).collect();
        let report = service
            .submit(JobSpec::new(keys.clone()))
            .expect("admitted")
            .wait()
            .expect("recovers loudly, never silently wrong");
        assert_eq!(report.output, common::sorted(&keys));
        assert!(
            report.recovered(),
            "a dead-from-first-send node must cost at least one retry"
        );
        let metrics = service.metrics();
        assert!(
            !metrics.quarantined.is_empty(),
            "diagnosis must quarantine into the blast region"
        );
        let quarantined = metrics.quarantined.clone();
        service.shutdown();
        (report.output, quarantined)
    }

    let (reactor_out, reactor_quarantine) = recover(reactor(8));
    let threaded = {
        let transport = TcpTransport::bind(TcpConfig::default()).expect("bind threaded loopback");
        let addr = transport.local_addr();
        for label in 0..8 {
            transport.set_peer(label, addr);
        }
        transport
    };
    let (tcp_out, tcp_quarantine) = recover(threaded);

    assert_eq!(reactor_out, tcp_out, "backends must agree on the output");
    // Node 5 is dead from its very first send, so diagnosis is
    // deterministic on both media: the quarantined set names it.
    assert_eq!(reactor_quarantine, tcp_quarantine);
    assert!(reactor_quarantine.contains(&5));
}
