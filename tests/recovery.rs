//! End-to-end recovery workflow: detect → diagnose → retry, the
//! "appropriate actions" loop the paper's diagnostic delivery enables.

mod common;

use std::time::Duration;

use aoft::faults::{FaultKind, FaultPlan, Trigger};
use aoft::hypercube::NodeId;
use aoft::sort::{diagnosis, Algorithm, SortBuilder, SortError};

fn builder() -> SortBuilder {
    SortBuilder::new(Algorithm::FaultTolerant)
        .keys((0..16).map(|x| (x * 97 + 13) % 61).collect())
        .recv_timeout(Duration::from_millis(400))
}

#[test]
fn detect_diagnose_retry_loop() {
    // The environment: node P9 corrupts data during the first two attempts,
    // then the transient clears.
    let environment = |attempt: usize| {
        if attempt < 2 {
            FaultPlan::new().with_fault(
                NodeId::new(9),
                FaultKind::CorruptValue,
                Trigger::from_seq(1),
                attempt as u64 + 5,
            )
        } else {
            FaultPlan::new()
        }
    };

    let retry = builder()
        .run_with_retry(4, environment)
        .expect("third attempt succeeds");
    assert_eq!(retry.attempts_used, 3);
    assert_eq!(retry.detections.len(), 2);

    // Diagnose each failed attempt: the suspect set must contain the truly
    // faulty node every time.
    for reports in &retry.detections {
        let diagnosis = diagnosis::diagnose(reports, 4);
        assert!(
            diagnosis.suspects().contains(NodeId::new(9)),
            "P9 should be suspect: {diagnosis}"
        );
    }

    let keys: Vec<i32> = (0..16).map(|x| (x * 97 + 13) % 61).collect();
    assert_eq!(retry.report.output(), common::sorted(&keys));
}

#[test]
fn diagnosis_intersects_across_attempts() {
    // Each attempt yields a (possibly broad) suspect region; intersecting
    // the diagnoses across attempts narrows toward the recurring offender.
    let environment = |attempt: usize| {
        FaultPlan::new().with_fault(
            NodeId::new(6),
            FaultKind::TwoFaced,
            Trigger::from_seq(1),
            attempt as u64 * 31 + 7,
        )
    };
    let Err(SortError::Detected { reports: first, .. }) =
        builder().fault_plan(environment(0)).run()
    else {
        panic!("attempt 0 must fail");
    };
    let Err(SortError::Detected {
        reports: second, ..
    }) = builder().fault_plan(environment(1)).run()
    else {
        panic!("attempt 1 must fail");
    };

    let a = diagnosis::diagnose(&first, 4);
    let b = diagnosis::diagnose(&second, 4);
    let combined = a.suspects() & b.suspects();
    assert!(
        combined.contains(NodeId::new(6)),
        "recurring fault survives intersection: {a} ∩ {b}"
    );
    assert!(combined.len() <= a.suspects().len());
    assert!(combined.len() <= b.suspects().len());
}

#[test]
fn delayed_messages_never_produce_wrong_output() {
    // The Delayer either stays harmless (late but FIFO-consistent delivery)
    // or trips a timeout/protocol check — both acceptable, wrong output is
    // not.
    let keys: Vec<i32> = (0..16).map(|x| (x * 97 + 13) % 61).collect();
    let expected = common::sorted(&keys);
    for node in 0..16u32 {
        for from in 1..5u64 {
            let plan = FaultPlan::new().with_fault(
                NodeId::new(node),
                FaultKind::DelayMessages,
                Trigger::window(from, from + 2),
                u64::from(node) ^ from,
            );
            match builder().fault_plan(plan).run() {
                Ok(report) => assert_eq!(report.output(), expected, "P{node} from {from}"),
                Err(SortError::Detected { .. }) => {}
                Err(other) => panic!("unexpected: {other}"),
            }
        }
    }
}
