//! End-to-end record/replay: a recorded Byzantine run replays bit-exactly.
//!
//! This is the subsystem's acceptance test: a d = 4 faulty run (a crashing
//! node *and* a value-corrupting node) is recorded, then verified — the
//! replay must reproduce the identical Φ-violation sequence, and an honest
//! recording must reproduce output and makespan, bit for bit.

mod common;

use aoft::faults::{FaultKind, FaultPlan, Trigger};
use aoft::hypercube::NodeId;
use aoft::replay::{record, verify, RecordSpec, RecordedOutcome};
use aoft::sort::Algorithm;

fn byzantine_plan() -> FaultPlan {
    FaultPlan::new()
        .with_fault(NodeId::new(5), FaultKind::Crash, Trigger::from_seq(2), 17)
        .with_fault(
            NodeId::new(11),
            FaultKind::CorruptValue,
            Trigger::from_seq(1),
            23,
        )
}

fn keys(count: usize) -> Vec<i32> {
    (0..count as i64)
        .map(|x| ((x.wrapping_mul(2654435761)) % 65_536 - 32_768) as i32)
        .collect()
}

#[test]
fn recorded_byzantine_run_replays_bit_exactly() {
    let spec = RecordSpec::new(Algorithm::FaultTolerant, keys(16))
        .nodes(16)
        .fault_plan(byzantine_plan())
        .job(7);
    let trace = record(spec).unwrap();

    // The adversaries must actually bite: Theorem 3's fail-stop, with at
    // least one report naming each fault's footprint.
    let RecordedOutcome::FailStop { reports } = &trace.outcome else {
        panic!("kill + corrupt adversaries must fail-stop, got a completion");
    };
    assert!(!reports.is_empty(), "fail-stop carries diagnostics");

    // JSON round trip (the artifact format), then bit-exact re-execution:
    // identical outcome variant, identical ordered report sequence.
    let wire = aoft::replay::to_json(&trace);
    let loaded = aoft::replay::from_json(&wire).unwrap();
    assert_eq!(loaded, trace);
    let report = verify(&loaded).unwrap();
    assert!(report.is_bit_exact(), "{report}");

    // Recording the same spec twice is also bit-identical end to end —
    // determinism of the recorder itself, not just of replay-after-record.
    let again = record(
        RecordSpec::new(Algorithm::FaultTolerant, keys(16))
            .nodes(16)
            .fault_plan(byzantine_plan())
            .job(7),
    )
    .unwrap();
    assert_eq!(again, trace);
}

#[test]
fn recorded_honest_run_replays_with_event_capture() {
    let spec = RecordSpec::new(Algorithm::FaultTolerant, keys(32))
        .nodes(16)
        .capture_events(true);
    let trace = record(spec).unwrap();
    let RecordedOutcome::Completed { output, .. } = &trace.outcome else {
        panic!("honest run completes");
    };
    assert_eq!(output, &common::sorted(&keys(32)));
    assert!(
        trace
            .events
            .as_ref()
            .is_some_and(|t| !t.events().is_empty()),
        "event capture requested"
    );
    let report = verify(&trace).unwrap();
    assert!(report.is_bit_exact(), "{report}");
}

#[test]
fn divergence_is_loud() {
    let trace = record(
        RecordSpec::new(Algorithm::FaultTolerant, keys(16))
            .nodes(16)
            .fault_plan(byzantine_plan()),
    )
    .unwrap();
    // Drop the last report: the verifier must notice the truncation.
    let mut tampered = trace.clone();
    let RecordedOutcome::FailStop { reports } = &mut tampered.outcome else {
        panic!("byzantine run fail-stops");
    };
    reports.pop();
    let report = verify(&tampered).unwrap();
    assert!(!report.is_bit_exact());
    assert!(report.to_string().contains("report count"));
}
