//! Service soak: a continuous job stream through a resident `SortService`
//! with model-level faults injected sporadically over time. The paper's
//! contract, restated for a long-lived service: every job is answered with
//! a verified-correct result or a loud error — never a silently wrong one.
//!
//! The quick variant runs in tier-1 CI; the 60-second variant is
//! `#[ignore]`d and run by the nightly workflow
//! (`cargo test --release --test soak -- --ignored`). Override the
//! duration with `AOFT_SOAK_SECS`.

mod common;

use std::time::{Duration, Instant};

use aoft::faults::{periodic_fault_stream, FaultKind};
use aoft::svc::{JobSpec, SortService, SvcConfig};

const DIM: u32 = 3;
const NODES: u32 = 1 << DIM;
const KEYS_PER_JOB: i64 = 32;

fn job_keys(salt: i64) -> Vec<i32> {
    (0..KEYS_PER_JOB)
        .map(|x| (((x + salt).wrapping_mul(2_654_435_761)) % 997) as i32)
        .collect()
}

fn soak_config() -> SvcConfig {
    // Strikes may accumulate across hundreds of injected faults, but the
    // faults are transient (first attempt only) and rotate through every
    // node — quarantining would evict healthy hardware and eventually
    // exhaust the cube, so `u32::MAX` disables it (the documented sentinel,
    // which also gates the Φ_C equivocation-proof fast path).
    SvcConfig::new(DIM)
        .workers(2)
        .max_attempts(4)
        .quarantine_after(u32::MAX)
        .backoff(Duration::from_millis(1), Duration::from_millis(10))
        .recv_timeout(Duration::from_millis(300))
}

/// Pushes `jobs` jobs through the service, every `period`-th under an
/// injected fault, and verifies every single result. Returns how many jobs
/// ran faulted.
fn drive_stream(service: &SortService<aoft::sim::InProc>, jobs: usize, salt: i64) -> usize {
    let stream = periodic_fault_stream(jobs, 3, NODES, &FaultKind::ALL);
    let mut faulted = 0;
    let handles: Vec<_> = stream
        .into_iter()
        .enumerate()
        .map(|(index, (label, plan))| {
            let keys = job_keys(salt + index as i64);
            let mut spec = JobSpec::new(keys.clone());
            if label != "clean" {
                faulted += 1;
                spec = spec.fault_plan(plan);
            }
            let handle = service.submit(spec).expect("queue admits the stream");
            (label, keys, handle)
        })
        .collect();
    for (label, keys, handle) in handles {
        let report = handle
            .wait()
            .unwrap_or_else(|err| panic!("{label} job must complete loudly or not at all: {err}"));
        let expected = common::sorted(&keys);
        assert_eq!(
            report.output, expected,
            "{label} job delivered a silently wrong result"
        );
    }
    faulted
}

/// Tier-1 smoke for the soak harness itself: 48 jobs, every third faulted.
#[test]
fn short_fault_stream_never_lies() {
    let service =
        SortService::start(soak_config(), aoft::sim::InProc::new()).expect("service starts");
    let faulted = drive_stream(&service, 48, 0);
    assert_eq!(faulted, 16, "every third job carries an injected fault");
    let metrics = service.metrics();
    assert_eq!(metrics.jobs_completed, 48);
    assert_eq!(metrics.jobs_failed, 0);
    assert!(
        metrics.recovered_jobs >= 1,
        "injected crashes must manifest as at least one recovery"
    );
    service.shutdown();
}

/// The nightly soak: keep the stream flowing for 60 wall-clock seconds
/// (override with `AOFT_SOAK_SECS`), faults arriving sporadically the whole
/// time, zero silent corruption and zero lost jobs. With
/// `AOFT_SOAK_JOURNAL=<path>` the run also writes the observability event
/// journal there (nightly archives it as an artifact), and the final
/// metrics scrape is printed for the run log.
#[test]
#[ignore = "long-running soak; nightly runs it via -- --ignored"]
fn service_soak_survives_sporadic_faults() {
    let secs = std::env::var("AOFT_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    if let Ok(path) = std::env::var("AOFT_SOAK_JOURNAL") {
        aoft::obs::install_journal(&path).expect("journal path is writable");
    }
    let deadline = Instant::now() + Duration::from_secs(secs);
    let config = soak_config().metrics_addr("127.0.0.1:0".parse().unwrap());
    let service = SortService::start(config, aoft::sim::InProc::new()).expect("service starts");
    let mut rounds = 0u64;
    let mut jobs = 0u64;
    while Instant::now() < deadline {
        drive_stream(&service, 48, (rounds as i64) * 1_000);
        rounds += 1;
        jobs += 48;
    }
    let metrics = service.metrics();
    assert_eq!(metrics.jobs_completed, jobs, "no job may be lost");
    assert_eq!(metrics.jobs_failed, 0, "transient faults must all recover");
    assert!(
        metrics.recovered_jobs >= rounds,
        "sporadic faults must keep the recovery loop exercised: \
         {} recoveries over {rounds} rounds",
        metrics.recovered_jobs
    );
    println!(
        "soak: {jobs} jobs / {rounds} rounds in {secs}s — {} recovered, {} retries, \
         p50 {:?}, p99 {:?}",
        metrics.recovered_jobs, metrics.retries, metrics.latency_p50, metrics.latency_p99
    );

    // End-of-run scrape: the endpoint must serve a parseable exposition
    // whose job and predicate counters reflect the stream that just ran.
    let addr = service.metrics_addr().expect("soak config enables metrics");
    let text = aoft::obs::scrape(addr).expect("endpoint answers");
    let samples = aoft::obs::prom::parse_samples(&text).expect("exposition parses");
    assert!(samples["aoft_jobs_completed_total"] >= jobs as f64);
    assert!(samples["aoft_predicate_checks_total"] > 0.0);
    assert!(
        samples["aoft_violations_total"] > 0.0,
        "sporadic injected faults must surface as constraint violations"
    );
    println!("final scrape:\n{text}");

    service.shutdown();
    aoft::obs::flush_journal();

    // With `AOFT_SOAK_TRACE=<path>` the soak also leaves behind a replayable
    // incident recording: one representative faulted job from the stream,
    // re-run on the deterministic engine and captured as an `aoft-replay`
    // trace. Nightly archives it and a downstream job re-executes it with
    // `aoft-replay verify` — proof the artifact reproduces bit-exactly on a
    // different machine than the one that recorded it.
    if let Ok(path) = std::env::var("AOFT_SOAK_TRACE") {
        let (label, plan) = periodic_fault_stream(48, 3, NODES, &FaultKind::ALL)
            .into_iter()
            .find(|(label, _)| *label != "clean")
            .expect("every third job of the stream is faulted");
        let trace = aoft::replay::record(
            aoft::replay::RecordSpec::new(aoft::sort::Algorithm::FaultTolerant, job_keys(0))
                .nodes(NODES as usize)
                .fault_plan(plan),
        )
        .expect("soak trace records");
        let report = aoft::replay::verify(&trace).expect("soak trace replays");
        assert!(report.is_bit_exact(), "{report}");
        aoft::replay::write_trace(&path, &trace).expect("trace path is writable");
        println!(
            "recorded {label} incident trace: {} -> {path}",
            trace.summary()
        );
    }
}
