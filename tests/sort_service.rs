//! Acceptance tests for the resident sort service: a continuous job stream
//! over loopback TCP surviving a mid-stream node death with zero silent
//! corruption.

mod common;

use std::time::Duration;

use aoft::faults::{FaultyTransport, LinkFault};
use aoft::sim::{TcpConfig, TcpTransport};
use aoft::svc::{JobError, JobSpec, SortService, SubmitError, SvcConfig};

fn loopback(nodes: u32) -> TcpTransport {
    let transport = TcpTransport::bind(TcpConfig::default()).expect("bind loopback listener");
    let addr = transport.local_addr();
    for label in 0..nodes {
        transport.set_peer(label, addr);
    }
    transport
}

fn job_keys(salt: i64) -> Vec<i32> {
    (0..32i64)
        .map(|x| (((x + salt).wrapping_mul(2_654_435_761)) % 997) as i32)
        .collect()
}

/// The PR's acceptance demo: 32 jobs over loopback TCP on a d=3 cube, node
/// 5 killed mid-stream. Every job must complete with a verified correct
/// result (quarantine + degraded-mode retry), and the metrics must show the
/// recovery.
#[test]
fn service_survives_mid_stream_node_death_over_tcp() {
    // Each of node 5's outgoing links goes fail-silent after 25 frames —
    // a few jobs into the stream. The service's link cache keeps the kill
    // counters alive across jobs, so the node stays dead until the
    // diagnosis loop quarantines it.
    let kill = LinkFault {
        kill_after: Some(25),
        ..LinkFault::default()
    };
    let transport = FaultyTransport::new(loopback(8), 0xACCE97).fault_sender(5, kill);
    let config = SvcConfig::new(3)
        .max_attempts(4)
        .quarantine_after(1)
        .backoff(Duration::from_millis(1), Duration::from_millis(20))
        .recv_timeout(Duration::from_millis(800));
    let service = SortService::start(config, transport).expect("service starts");

    for index in 0..32i64 {
        let keys = job_keys(index);
        let report = service
            .submit(JobSpec::new(keys.clone()))
            .expect("queue depth 64 admits a serial stream")
            .wait()
            .unwrap_or_else(|err| panic!("job {index} failed loudly: {err}"));
        assert_eq!(
            report.output,
            common::sorted(&keys),
            "job {index}: silently wrong output"
        );
    }

    let metrics = service.metrics();
    assert_eq!(metrics.jobs_completed, 32, "every job must complete");
    assert_eq!(metrics.jobs_failed, 0);
    assert!(
        metrics.retries >= 1,
        "node death must cost at least one retry"
    );
    assert!(
        metrics.recovered_jobs >= 1,
        "at least one job must recover from the fail-stop"
    );
    // A mid-stream kill races cascaded timeouts: the first report's dead
    // link is incident to node 5 or to a neighbor it starved, and both
    // endpoints are struck (Definition 3 case 2a). Either way the service
    // must quarantine into that blast region and route the stream around
    // it — naming node 5 *specifically* is only deterministic when the
    // node is dead from its first send (covered by the unit tests).
    assert!(
        !metrics.quarantined.is_empty(),
        "the fail-stop must quarantine at least one implicated node"
    );
    assert!(
        metrics.quarantined.iter().all(|&n| n < 8),
        "quarantine holds physical cube labels, got {:?}",
        metrics.quarantined
    );
    assert!(metrics.latency_p99 >= metrics.latency_p50);
    service.shutdown();
}

/// Concurrent workers multiplex one TCP cube without crosstalk: disjoint
/// link-tag namespaces and per-attempt run ids keep 4 simultaneous jobs'
/// frames apart on the shared transport.
#[test]
fn concurrent_workers_share_one_tcp_cube() {
    let config = SvcConfig::new(2)
        .workers(4)
        .recv_timeout(Duration::from_millis(800));
    let service = SortService::start(config, loopback(4)).expect("service starts");
    let handles: Vec<_> = (0..16i64)
        .map(|index| {
            let keys = job_keys(100 + index);
            let handle = service.submit(JobSpec::new(keys.clone())).expect("admit");
            (keys, handle)
        })
        .collect();
    for (keys, handle) in handles {
        let report = handle.wait().expect("concurrent job completes");
        assert_eq!(report.output, common::sorted(&keys));
    }
    let metrics = service.metrics();
    assert_eq!(metrics.jobs_completed, 16);
    assert_eq!(metrics.jobs_failed, 0);
    assert!(metrics.quarantined.is_empty(), "clean cluster stays clean");
    service.shutdown();
}

/// Backpressure is visible to TCP clients too: a depth-2 queue with a slow
/// single worker rejects the overflow rather than buffering unboundedly.
#[test]
fn admission_control_rejects_past_queue_depth() {
    let config = SvcConfig::new(2)
        .queue_depth(2)
        .workers(1)
        .recv_timeout(Duration::from_millis(800));
    let service = SortService::start(config, loopback(4)).expect("service starts");
    let mut admitted = Vec::new();
    let mut rejected = 0usize;
    for index in 0..64i64 {
        match service.submit(JobSpec::new(job_keys(index))) {
            Ok(handle) => admitted.push(handle),
            Err(SubmitError::Backpressure { depth }) => {
                assert_eq!(depth, 2);
                rejected += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    assert!(rejected > 0, "64 instant submits must outrun one worker");
    for handle in admitted {
        assert!(
            handle.wait().is_ok(),
            "admitted jobs complete despite the rejected burst"
        );
    }
    service.shutdown();
}

/// The observability acceptance demo: a service with the Prometheus
/// endpoint enabled, scraped live while a faulted stream runs. The
/// exposition must parse, carry every advertised metric family, and show
/// the fault as a nonzero Φ-violation or quarantine counter alongside
/// nonzero job, link, and predicate activity.
#[test]
fn metrics_endpoint_serves_prometheus_exposition() {
    let kill = LinkFault {
        kill_after: Some(25),
        ..LinkFault::default()
    };
    let transport = FaultyTransport::new(loopback(8), 0x0B5E7).fault_sender(5, kill);
    let config = SvcConfig::new(3)
        .max_attempts(4)
        .quarantine_after(1)
        .backoff(Duration::from_millis(1), Duration::from_millis(20))
        .recv_timeout(Duration::from_millis(800))
        .metrics_addr("127.0.0.1:0".parse().unwrap());
    let service = SortService::start(config, transport).expect("service starts");
    let addr = service.metrics_addr().expect("endpoint is enabled");

    // Scrape while jobs are in flight, not just after the fact.
    let handles: Vec<_> = (0..8i64)
        .map(|index| {
            let keys = job_keys(500 + index);
            (
                keys.clone(),
                service.submit(JobSpec::new(keys)).expect("admit"),
            )
        })
        .collect();
    let live = aoft::obs::scrape(addr).expect("endpoint answers mid-stream");
    aoft::obs::prom::parse_samples(&live).expect("mid-stream exposition parses");
    for (keys, handle) in handles {
        let report = handle.wait().expect("faulted stream still completes");
        assert_eq!(report.output, common::sorted(&keys));
    }

    let text = aoft::obs::scrape(addr).expect("endpoint answers at end of run");
    let families = aoft::obs::prom::parse_families(&text).expect("exposition parses");
    for required in [
        "aoft_jobs_submitted_total",
        "aoft_jobs_completed_total",
        "aoft_job_retries_total",
        "aoft_attempts_total",
        "aoft_queue_depth",
        "aoft_inflight_jobs",
        "aoft_quarantined_nodes",
        "aoft_job_latency_seconds",
        "aoft_predicate_checks_total",
        "aoft_predicate_check_seconds",
        "aoft_violations_total",
        "aoft_stage_seconds",
        "aoft_sort_runs_total",
        "aoft_sort_failstops_total",
        "aoft_error_reports_total",
        "aoft_net_bytes_sent_total",
        "aoft_net_bytes_received_total",
        "aoft_net_heartbeat_misses_total",
        "aoft_net_peer_dead_total",
        "aoft_job_effort_ticks_total",
        "aoft_batch_occupancy",
        "aoft_batch_flushes_total",
        "aoft_batch_jobs_coalesced_total",
        "aoft_reactor_frames_per_write",
        "aoft_mux_sessions",
        "aoft_mux_frames_per_write",
        "aoft_mux_wake_latency_us",
        "aoft_mux_bytes_sent_total",
        "aoft_mux_bytes_received_total",
        "aoft_adv_mutations_total",
        "aoft_adv_drops_total",
        "aoft_buf_pool_leases_total",
        "aoft_buf_pool_outstanding",
        "aoft_buf_pool_high_water",
        "aoft_buf_pool_retained_bytes",
    ] {
        assert!(families.contains(required), "missing family {required}");
    }

    // The registry is process-global, so assert activity (≥), not totals.
    let samples = aoft::obs::prom::parse_samples(&text).expect("exposition parses");
    assert!(samples["aoft_jobs_completed_total"] >= 8.0);
    assert!(samples["aoft_attempts_total"] >= 8.0);
    assert!(samples["aoft_predicate_checks_total"] > 0.0);
    assert!(
        samples["aoft_net_bytes_sent_total"] > 0.0,
        "TCP links must account their frame bytes"
    );
    assert!(
        samples["aoft_violations_total"] > 0.0 || samples["aoft_quarantine_total"] > 0.0,
        "the injected kill must surface as a Φ violation or a quarantine"
    );
    service.shutdown();
}

/// The mux transport's accounting, scraped off a live endpoint: session
/// gauge, per-write coalescing and wake-latency histograms, and
/// per-session byte counters all move when a job stream actually runs
/// over multiplexed peer-pair sessions.
#[test]
fn mux_metrics_account_sessions_and_bytes() {
    use aoft::net::{MuxConfig, MuxTransport};
    let transport = MuxTransport::bind(MuxConfig::default()).expect("bind loopback mux");
    let addr = transport.local_addr();
    for label in 0..8 {
        transport.set_peer(label, addr);
    }
    let config = SvcConfig::new(3)
        .recv_timeout(Duration::from_millis(800))
        .metrics_addr("127.0.0.1:0".parse().unwrap());
    let service = SortService::start(config, transport).expect("service starts");
    let endpoint = service.metrics_addr().expect("endpoint is enabled");
    for index in 0..4i64 {
        let keys = job_keys(900 + index);
        let report = service
            .submit(JobSpec::new(keys.clone()))
            .expect("admit")
            .wait()
            .expect("clean mux job completes");
        assert_eq!(report.output, common::sorted(&keys));
    }
    let text = aoft::obs::scrape(endpoint).expect("endpoint answers");
    let samples = aoft::obs::prom::parse_samples(&text).expect("exposition parses");
    // The registry is process-global, so assert activity (≥), not totals.
    assert!(
        samples["aoft_mux_bytes_sent_total"] > 0.0,
        "mux sessions must account their tx bytes per session"
    );
    assert!(
        samples["aoft_mux_bytes_received_total"] > 0.0,
        "mux sessions must account their rx bytes per session"
    );
    // Histogram series fold into their family key, valued at `_count`.
    assert!(
        samples["aoft_mux_frames_per_write"] > 0.0,
        "every vectored write must record its coalescing depth"
    );
    assert!(
        samples["aoft_mux_wake_latency_us"] > 0.0,
        "every drained frame must record its enqueue→write latency"
    );
    assert!(
        text.lines()
            .any(|l| l.starts_with("aoft_mux_bytes_sent_total{session=")),
        "byte counters must be labelled per session"
    );
    service.shutdown();
}

/// A shut-down service answers loudly, never hangs.
#[test]
fn shutdown_is_loud() {
    let service = SortService::start(
        SvcConfig::new(2).recv_timeout(Duration::from_millis(800)),
        loopback(4),
    )
    .expect("service starts");
    let handle = service.submit(JobSpec::new(job_keys(7))).expect("admit");
    service.shutdown();
    match handle.wait() {
        Ok(report) => assert_eq!(report.output, common::sorted(&job_keys(7))),
        Err(err) => assert!(matches!(err, JobError::Stopped)),
    }
}
