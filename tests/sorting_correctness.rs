//! Cross-crate correctness: every algorithm sorts every input shape, with
//! property-based coverage over keys, machine sizes and block sizes.

mod common;

use aoft::sort::{Algorithm, SortBuilder};
use proptest::prelude::*;

fn run(algorithm: Algorithm, keys: Vec<i32>, nodes: usize) -> Vec<i32> {
    SortBuilder::new(algorithm)
        .keys(keys)
        .nodes(nodes)
        .run()
        .unwrap_or_else(|e| panic!("honest {algorithm} run failed: {e}"))
        .output()
        .to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snr_sorts_any_input(
        dim in 0u32..5,
        m in prop::sample::select(vec![1usize, 2, 5]),
        seed in any::<u64>(),
    ) {
        let nodes = 1usize << dim;
        let keys = keys_from_seed(nodes * m, seed);
        prop_assert_eq!(
            run(Algorithm::NonRedundant, keys.clone(), nodes),
            common::sorted(&keys)
        );
    }

    #[test]
    fn sft_sorts_any_input(
        dim in 0u32..5,
        m in prop::sample::select(vec![1usize, 2, 5]),
        seed in any::<u64>(),
    ) {
        let nodes = 1usize << dim;
        let keys = keys_from_seed(nodes * m, seed);
        prop_assert_eq!(
            run(Algorithm::FaultTolerant, keys.clone(), nodes),
            common::sorted(&keys)
        );
    }

    #[test]
    fn host_baselines_sort_any_input(
        dim in 1u32..4,
        seed in any::<u64>(),
    ) {
        let nodes = 1usize << dim;
        let keys = keys_from_seed(nodes * 3, seed);
        prop_assert_eq!(
            run(Algorithm::HostSequential, keys.clone(), nodes),
            common::sorted(&keys)
        );
        prop_assert_eq!(
            run(Algorithm::HostVerified, keys.clone(), nodes),
            common::sorted(&keys)
        );
    }

    #[test]
    fn all_algorithms_agree(seed in any::<u64>()) {
        let keys = keys_from_seed(16, seed);
        let reference = run(Algorithm::NonRedundant, keys.clone(), 16);
        for algorithm in [
            Algorithm::FaultTolerant,
            Algorithm::HostSequential,
            Algorithm::HostVerified,
        ] {
            prop_assert_eq!(run(algorithm, keys.clone(), 16), reference.clone());
        }
    }
}

/// Deterministic pseudorandom keys without dragging an RNG dependency into
/// the prop body (proptest's own `seed` provides the entropy).
fn keys_from_seed(len: usize, seed: u64) -> Vec<i32> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as i32
        })
        .collect()
}

#[test]
fn extreme_values_survive() {
    let keys = vec![i32::MAX, i32::MIN, 0, -1, 1, i32::MAX, i32::MIN, 0];
    let expected = common::sorted(&keys);
    for algorithm in Algorithm::ALL {
        assert_eq!(
            run(algorithm, keys.clone(), keys.len()),
            expected,
            "{algorithm}"
        );
    }
}

#[test]
fn all_equal_keys() {
    let keys = vec![7i32; 32];
    for algorithm in Algorithm::ALL {
        assert_eq!(run(algorithm, keys.clone(), 32), keys, "{algorithm}");
    }
}

#[test]
fn single_node_all_algorithms() {
    for algorithm in Algorithm::ALL {
        assert_eq!(
            run(algorithm, vec![5, 3, 4], 1),
            vec![3, 4, 5],
            "{algorithm}"
        );
    }
}

#[test]
fn larger_machine_with_blocks() {
    let keys: Vec<i32> = (0..512).map(|x| (x * 48_271) % 1_000 - 500).collect();
    let expected = common::sorted(&keys);
    assert_eq!(run(Algorithm::FaultTolerant, keys.clone(), 64), expected);
    assert_eq!(run(Algorithm::NonRedundant, keys, 64), expected);
}
