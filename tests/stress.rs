//! Scale tests: the machines the paper says multicomputers "can grow to"
//! (1000+ processors), on the simulated substrate.
//!
//! The largest run is `#[ignore]`d by default (it spawns 1024 OS threads);
//! run it explicitly with `cargo test --release -- --ignored`.

mod common;

use std::time::Duration;

use aoft::sort::{Algorithm, SortBuilder};

fn builder(algorithm: Algorithm, nodes: usize, m: usize) -> (SortBuilder, Vec<i32>) {
    let keys: Vec<i32> = (0..(nodes * m) as i64)
        .map(|x| ((x.wrapping_mul(2654435761)) % 65_536 - 32_768) as i32)
        .collect();
    let expected = common::sorted(&keys);
    let builder = SortBuilder::new(algorithm)
        .keys(keys)
        .nodes(nodes)
        .recv_timeout(Duration::from_secs(30));
    (builder, expected)
}

fn run(algorithm: Algorithm, nodes: usize, m: usize) -> aoft::sort::SortReport {
    let (builder, expected) = builder(algorithm, nodes, m);
    let report = builder.run().expect("honest run at scale");
    assert_eq!(report.output(), expected);
    report
}

fn run_det(algorithm: Algorithm, nodes: usize, m: usize) -> aoft::sort::SortReport {
    let (builder, expected) = builder(algorithm, nodes, m);
    let report = builder
        .run_deterministic()
        .expect("honest deterministic run at scale");
    assert_eq!(report.output(), expected);
    report
}

#[test]
fn sft_256_nodes() {
    let report = run(Algorithm::FaultTolerant, 256, 1);
    // Schedule identities still hold at scale: 8·9/2 + 8 sends per node.
    let per_node = 8 * 9 / 2 + 8;
    assert_eq!(
        report.metrics().node_total().msgs_sent,
        256 * per_node as u64
    );
}

#[test]
fn snr_512_nodes() {
    let report = run(Algorithm::NonRedundant, 512, 1);
    assert_eq!(
        report.metrics().node_total().msgs_sent,
        512 * (9 * 10 / 2) as u64
    );
}

#[test]
fn sft_blocks_at_scale() {
    // 64 nodes × 128 keys = 8192 keys through the checked algorithm.
    run(Algorithm::FaultTolerant, 64, 128);
}

#[test]
fn host_baseline_at_scale() {
    run(Algorithm::HostSequential, 128, 16);
}

// The d = 10 machine the threaded engine could only afford as an ignored
// nightly job: under the cooperative scheduler exactly one thread runs at a
// time, so it is cheap enough for tier-1.
#[test]
fn sft_1024_nodes_deterministic() {
    let report = run_det(Algorithm::FaultTolerant, 1024, 1);
    // Schedule identities at d = 10: 10·11/2 + 10 sends per node.
    let per_node = 10 * 11 / 2 + 10;
    assert_eq!(
        report.metrics().node_total().msgs_sent,
        1024 * per_node as u64
    );
}

#[test]
fn snr_2048_nodes_deterministic_smoke() {
    // d = 11, past the thread-per-node comfort zone either way.
    run_det(Algorithm::NonRedundant, 2048, 1);
}

#[test]
#[ignore = "spawns 1024 free-running threads; run with --ignored in release mode"]
fn sft_1024_nodes() {
    run(Algorithm::FaultTolerant, 1024, 1);
}

#[test]
fn scale_is_deterministic() {
    let a = run(Algorithm::FaultTolerant, 128, 2).elapsed();
    let b = run(Algorithm::FaultTolerant, 128, 2).elapsed();
    assert_eq!(a, b);
}
