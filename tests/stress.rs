//! Scale tests: the machines the paper says multicomputers "can grow to"
//! (1000+ processors), on the simulated substrate.
//!
//! The largest run is `#[ignore]`d by default (it spawns 1024 OS threads);
//! run it explicitly with `cargo test --release -- --ignored`.

mod common;

use std::time::Duration;

use aoft::sort::{Algorithm, SortBuilder};

fn run(algorithm: Algorithm, nodes: usize, m: usize) -> aoft::sort::SortReport {
    let keys: Vec<i32> = (0..(nodes * m) as i64)
        .map(|x| ((x.wrapping_mul(2654435761)) % 65_536 - 32_768) as i32)
        .collect();
    let expected = common::sorted(&keys);
    let report = SortBuilder::new(algorithm)
        .keys(keys)
        .nodes(nodes)
        .recv_timeout(Duration::from_secs(30))
        .run()
        .expect("honest run at scale");
    assert_eq!(report.output(), expected);
    report
}

#[test]
fn sft_256_nodes() {
    let report = run(Algorithm::FaultTolerant, 256, 1);
    // Schedule identities still hold at scale: 8·9/2 + 8 sends per node.
    let per_node = 8 * 9 / 2 + 8;
    assert_eq!(
        report.metrics().node_total().msgs_sent,
        256 * per_node as u64
    );
}

#[test]
fn snr_512_nodes() {
    let report = run(Algorithm::NonRedundant, 512, 1);
    assert_eq!(
        report.metrics().node_total().msgs_sent,
        512 * (9 * 10 / 2) as u64
    );
}

#[test]
fn sft_blocks_at_scale() {
    // 64 nodes × 128 keys = 8192 keys through the checked algorithm.
    run(Algorithm::FaultTolerant, 64, 128);
}

#[test]
fn host_baseline_at_scale() {
    run(Algorithm::HostSequential, 128, 16);
}

#[test]
#[ignore = "spawns 1024 threads; run with --ignored in release mode"]
fn sft_1024_nodes() {
    run(Algorithm::FaultTolerant, 1024, 1);
}

#[test]
fn scale_is_deterministic() {
    let a = run(Algorithm::FaultTolerant, 128, 2).elapsed();
    let b = run(Algorithm::FaultTolerant, 128, 2).elapsed();
    assert_eq!(a, b);
}
