//! Surgical fault injection: one hand-built adversary per predicate path,
//! verifying that *each* executable assertion actually carries its weight —
//! not just that "something" fires eventually.

mod common;

use std::time::Duration;

use aoft::hypercube::{Hypercube, NodeId};
use aoft::sim::{Action, Adversary, AdversarySet, Engine, SendContext, SimConfig};
use aoft::sort::{block, Block, LbsWire, Msg, SftProgram, Violation};

fn engine(dim: u32) -> Engine {
    Engine::new(
        Hypercube::new(dim).unwrap(),
        SimConfig::new().recv_timeout(Duration::from_millis(400)),
    )
}

fn run_with(adversary: Box<dyn Adversary<Msg>>, at: u32, dim: u32) -> Vec<aoft::sim::ErrorReport> {
    let nodes = 1usize << dim;
    let keys: Vec<i32> = (0..nodes as i32).map(|x| (x * 37 + 11) % 101).collect();
    let mut advs = AdversarySet::honest(nodes);
    advs.install(NodeId::new(at), adversary);
    let program = SftProgram::new(block::distribute(&keys, nodes));
    let report = engine(dim).run_faulty(&program, advs);
    assert!(report.is_fail_stop(), "targeted fault must be detected");
    report.reports().to_vec()
}

fn primary_code(reports: &[aoft::sim::ErrorReport]) -> u32 {
    reports[0].code
}

/// Corrupts only the piggybacked sequence, leaving the operand intact: an
/// overlap mismatch that only Φ_C (or Φ_F one stage later) can see.
struct LbsOnly {
    from_seq: u64,
}

impl Adversary<Msg> for LbsOnly {
    fn intercept(&mut self, ctx: &SendContext, payload: Msg) -> Action<Msg> {
        if ctx.seq < self.from_seq {
            return Action::Deliver(payload);
        }
        match payload {
            Msg::Tagged { data, mut lbs } => {
                bump_first_slot(&mut lbs);
                Action::Deliver(Msg::Tagged { data, lbs })
            }
            Msg::Lbs(mut lbs) => {
                bump_first_slot(&mut lbs);
                Action::Deliver(Msg::Lbs(lbs))
            }
            other => Action::Deliver(other),
        }
    }
}

fn bump_first_slot(lbs: &mut LbsWire) {
    if let Some(slot) = lbs.slots.iter_mut().flatten().next() {
        let mut keys = slot.keys().to_vec();
        keys[0] = keys[0].wrapping_add(1);
        *slot = Block::from_wire(keys);
    }
}

#[test]
fn lbs_only_corruption_is_caught_by_consistency_or_feasibility() {
    let reports = run_with(Box::new(LbsOnly { from_seq: 1 }), 3, 3);
    let code = primary_code(&reports);
    let caught_by = [
        Violation::Inconsistent {
            stage: 0,
            step: 0,
            entry: NodeId::new(0),
        }
        .code(),
        Violation::NotPermutation { stage: 0 }.code(),
        Violation::NonBitonic { stage: 0 }.code(),
    ];
    assert!(
        caught_by.contains(&code),
        "unexpected code {code}: {reports:?}"
    );
}

/// Corrupts only the compare-exchange operand, leaving the piggyback clean:
/// locally plausible, only the stage-boundary Φ_F correlation can object.
struct DataOnly {
    at_seq: u64,
}

impl Adversary<Msg> for DataOnly {
    fn intercept(&mut self, ctx: &SendContext, payload: Msg) -> Action<Msg> {
        if ctx.seq != self.at_seq {
            return Action::Deliver(payload);
        }
        match payload {
            Msg::Tagged { data, lbs } => {
                let mut keys = data.into_keys();
                keys[0] = keys[0].wrapping_add(7);
                Action::Deliver(Msg::Tagged {
                    data: Block::from_wire(keys),
                    lbs,
                })
            }
            other => Action::Deliver(other),
        }
    }
}

#[test]
fn data_only_corruption_is_caught_at_a_stage_boundary() {
    let reports = run_with(Box::new(DataOnly { at_seq: 1 }), 5, 3);
    let code = primary_code(&reports);
    // The operand divergence surfaces as a feasibility failure (the value
    // was never part of the input), possibly observed as a bitonicity or
    // consistency break first depending on where the value lands.
    assert!(
        (1..=3).contains(&code),
        "unexpected code {code}: {reports:?}"
    );
}

/// Claims entries the sender cannot legitimately hold: the wire carries a
/// plausible block in a slot outside `vect_mask`'s expectation. Φ_C must
/// *ignore* it — planting must not work — and the run must stay healthy.
struct Planter;

impl Adversary<Msg> for Planter {
    fn intercept(&mut self, _ctx: &SendContext, payload: Msg) -> Action<Msg> {
        match payload {
            Msg::Tagged { data, mut lbs } => {
                // Fill every empty slot with a forged block.
                let m = lbs.block_len.max(1) as usize;
                for slot in lbs.slots.iter_mut() {
                    if slot.is_none() {
                        *slot = Some(Block::from_wire(vec![-999; m]));
                    }
                }
                Action::Deliver(Msg::Tagged { data, lbs })
            }
            other => Action::Deliver(other),
        }
    }
}

#[test]
fn planted_entries_outside_vect_mask_are_ignored() {
    // The planter's forged entries must never be adopted: the run completes
    // and the output is correct — the locally-computed vect_mask, not the
    // wire, decides what counts.
    let nodes = 8;
    let keys: Vec<i32> = (0..nodes as i32).map(|x| (x * 37 + 11) % 101).collect();
    let expected = common::sorted(&keys);
    let mut advs = AdversarySet::honest(nodes);
    advs.install(NodeId::new(2), Box::new(Planter));
    let program = SftProgram::new(block::distribute(&keys, nodes));
    let report = engine(3).run_faulty(&program, advs);
    let outputs = report.outputs().expect("planting is harmless");
    assert_eq!(block::collect(outputs), expected);
}

/// Withholds entries the sender *does* legitimately hold (truncates the
/// wire array): Φ_C's missing-entry check must fire.
struct Withholder {
    from_seq: u64,
}

impl Adversary<Msg> for Withholder {
    fn intercept(&mut self, ctx: &SendContext, payload: Msg) -> Action<Msg> {
        if ctx.seq < self.from_seq {
            return Action::Deliver(payload);
        }
        match payload {
            Msg::Tagged { data, mut lbs } => {
                for slot in lbs.slots.iter_mut() {
                    *slot = None;
                }
                Action::Deliver(Msg::Tagged { data, lbs })
            }
            Msg::Lbs(mut lbs) => {
                for slot in lbs.slots.iter_mut() {
                    *slot = None;
                }
                Action::Deliver(Msg::Lbs(lbs))
            }
            other => Action::Deliver(other),
        }
    }
}

#[test]
fn withheld_entries_trip_missing_entry() {
    let reports = run_with(Box::new(Withholder { from_seq: 1 }), 6, 3);
    let code = primary_code(&reports);
    assert_eq!(
        code,
        Violation::MissingEntry {
            stage: 0,
            step: 0,
            entry: NodeId::new(0)
        }
        .code(),
        "{reports:?}"
    );
}

/// Sends a structurally wrong block size (m+1 keys): the malformed-block
/// check must fire before any value logic runs.
struct FatBlocks;

impl Adversary<Msg> for FatBlocks {
    fn intercept(&mut self, _ctx: &SendContext, payload: Msg) -> Action<Msg> {
        match payload {
            Msg::Tagged { data, lbs } => {
                let mut keys = data.into_keys();
                keys.push(*keys.last().unwrap_or(&0));
                Action::Deliver(Msg::Tagged {
                    data: Block::from_wire(keys),
                    lbs,
                })
            }
            other => Action::Deliver(other),
        }
    }
}

#[test]
fn malformed_blocks_are_rejected_structurally() {
    let reports = run_with(Box::new(FatBlocks), 1, 3);
    let code = primary_code(&reports);
    assert_eq!(
        code,
        Violation::MalformedBlock {
            stage: 0,
            expected: 0,
            got: 0
        }
        .code(),
        "{reports:?}"
    );
}

/// Swaps the protocol variant (Lbs where Tagged belongs): the unexpected-
/// message check must fire.
struct WrongVariant;

impl Adversary<Msg> for WrongVariant {
    fn intercept(&mut self, ctx: &SendContext, payload: Msg) -> Action<Msg> {
        if ctx.seq == 1 {
            if let Msg::Tagged { lbs, .. } = payload {
                return Action::Deliver(Msg::Lbs(lbs));
            }
        }
        Action::Deliver(payload)
    }
}

#[test]
fn wrong_variant_is_rejected() {
    let reports = run_with(Box::new(WrongVariant), 4, 3);
    let code = primary_code(&reports);
    assert_eq!(
        code,
        Violation::UnexpectedMessage { stage: 0, step: 0 }.code(),
        "{reports:?}"
    );
}
