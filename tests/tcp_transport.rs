//! Acceptance tests for the transport abstraction: the same `S_FT`
//! schedule over real loopback TCP, clean and under a transport-level
//! peer kill.

mod common;

use std::time::{Duration, Instant};

use aoft::faults::{FaultyTransport, LinkFault};
use aoft::hypercube::NodeSet;
use aoft::sim::{TcpConfig, TcpTransport};
use aoft::sort::{diagnosis, Algorithm, SortBuilder, SortError};

fn tcp() -> TcpTransport {
    TcpTransport::bind(TcpConfig::default()).expect("bind loopback listener")
}

fn builder(keys: Vec<i32>) -> SortBuilder {
    SortBuilder::new(Algorithm::FaultTolerant)
        .keys(keys)
        .nodes(8)
        .recv_timeout(Duration::from_millis(800))
}

#[test]
fn sft_sorts_d3_cube_over_loopback_tcp() {
    let keys: Vec<i32> = (0..32i32).map(|x| x.wrapping_mul(-97) % 50).collect();
    let report = builder(keys.clone()).run_on(tcp()).expect("clean TCP run");
    let expected = common::sorted(&keys);
    assert_eq!(report.output(), expected.as_slice());
    assert_eq!(report.blocks().len(), 8, "d=3 cube has 8 nodes");
}

#[test]
fn killed_peer_fail_stops_with_error_report() {
    let keys: Vec<i32> = (0..32).collect();
    // Node 5 goes fail-silent after two sends per link: mid-stage, its
    // peers stop hearing from it while it still believes its sends land.
    let kill = LinkFault {
        kill_after: Some(2),
        ..LinkFault::default()
    };
    let faulty = FaultyTransport::new(tcp(), 3).fault_sender(5, kill);
    match builder(keys).run_on(faulty) {
        Ok(_) => panic!("a silenced peer must not produce a sorted result"),
        Err(SortError::Detected { reports, .. }) => {
            assert!(!reports.is_empty(), "fail-stop must carry diagnostics");
            // Receiver-side detection: the violation is a missing message
            // observed by a healthy node, not a sender-side I/O error.
            assert!(
                reports.iter().any(|r| r.detail.contains("no message")),
                "reports should name the starved receive: {reports:?}"
            );
        }
        Err(other) => panic!("expected Detected, got {other:?}"),
    }
}

#[test]
fn snr_also_runs_over_tcp() {
    // The non-redundant baseline is transport-generic too — nothing in the
    // medium is S_FT-specific.
    let keys: Vec<i32> = (0..16i32).map(|x| 31 - 2 * x).collect();
    let report = SortBuilder::new(Algorithm::NonRedundant)
        .keys(keys.clone())
        .nodes(8)
        .recv_timeout(Duration::from_millis(800))
        .run_on(tcp())
        .expect("clean S_NR TCP run");
    let expected = common::sorted(&keys);
    assert_eq!(report.output(), expected.as_slice());
}

#[test]
fn retry_over_fresh_tcp_transports_recovers_with_diagnoses() {
    // run_with_retry_on models "restart the cluster and try again": every
    // attempt gets a brand-new loopback transport, but the environment
    // (node 5's dead outgoing links) persists for the first two attempts.
    // Each failed attempt must carry a receiver-side missing-message
    // diagnosis with a non-empty candidate region. Which dead link gets
    // reported is scheduler roulette — once node 5 goes silent the whole
    // cube stalls within a stage and all starved recv deadlines land
    // microseconds apart, so the reporter may be a starved *neighbor* pair
    // rather than a link incident to node 5 itself (Definition 3 case 2a:
    // a missing message only ever localizes blame to a link, and the
    // detector may be the faulty party). Attribution determinism for
    // synthetic report sets is pinned down in the diagnosis unit tests.
    let keys: Vec<i32> = (0..32i32).map(|x| x.wrapping_mul(-73) % 40).collect();
    let kill = LinkFault {
        kill_after: Some(0),
        ..LinkFault::default()
    };
    let retry = builder(keys.clone())
        .retry_backoff(Duration::ZERO, Duration::ZERO)
        .run_with_retry_on(3, |attempt| {
            let transport = FaultyTransport::new(tcp(), attempt as u64 + 11);
            if attempt < 2 {
                transport.fault_sender(5, kill)
            } else {
                transport
            }
        })
        .expect("third attempt runs on a healthy cluster");
    assert_eq!(retry.attempts_used, 3);
    assert_eq!(retry.detections.len(), 2);
    for reports in &retry.detections {
        assert!(
            reports
                .iter()
                .any(|r| r.suspect.is_some() && r.detail.contains("no message")),
            "failed attempts must carry a missing-message accusation: {reports:?}"
        );
        assert!(
            reports
                .iter()
                .all(|r| r.detector.index() < 8 && r.suspect.is_none_or(|s| s.index() < 8)),
            "accusations stay within the cube: {reports:?}"
        );
        let diagnosis = diagnosis::diagnose(reports, 3);
        let mut region = NodeSet::empty(8);
        for candidate in diagnosis.candidates() {
            region |= candidate;
        }
        assert!(
            !region.is_empty(),
            "diagnosis must localize the fault to a candidate region: {diagnosis}"
        );
    }
    let expected = common::sorted(&keys);
    assert_eq!(retry.report.output(), expected.as_slice());
}

#[test]
fn detection_latency_is_bounded_by_recv_timeout() {
    // The whole point of deadline-based receives: a dead peer costs one
    // timeout, not a hang. Allow generous scheduling slack on top.
    let keys: Vec<i32> = (0..32).collect();
    let kill = LinkFault {
        kill_after: Some(0),
        ..LinkFault::default()
    };
    let faulty = FaultyTransport::new(tcp(), 9).fault_sender(2, kill);
    let start = Instant::now();
    let result = builder(keys).run_on(faulty);
    assert!(matches!(result, Err(SortError::Detected { .. })));
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "detection took {:?}",
        start.elapsed()
    );
}
