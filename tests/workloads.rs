//! Input-distribution sweep: oblivious sorting networks must behave
//! identically (same schedule, same message counts, same virtual time up to
//! data-independent costs) on every distribution.

mod common;

use aoft::models::workload::Workload;
use aoft::sort::{Algorithm, SortBuilder};

fn run(algorithm: Algorithm, keys: Vec<i32>) -> aoft::sort::SortReport {
    SortBuilder::new(algorithm)
        .keys(keys)
        .run()
        .expect("honest run")
}

#[test]
fn every_workload_sorts_on_every_algorithm() {
    for workload in Workload::ALL {
        let keys = workload.generate(32, 0xABCD);
        let expected = common::sorted(&keys);
        for algorithm in Algorithm::ALL {
            let report = run(algorithm, keys.clone());
            assert_eq!(report.output(), expected, "{algorithm} on {workload}");
        }
    }
}

#[test]
fn schedule_is_oblivious_to_data() {
    // Same machine size, different distributions: message and word counts
    // must be identical — the network never branches on key values.
    let reference = run(
        Algorithm::FaultTolerant,
        Workload::UniformRandom.generate(16, 1),
    );
    let ref_msgs = reference.metrics().total_msgs();
    let ref_words = reference.metrics().total_words();
    for workload in Workload::ALL {
        let report = run(Algorithm::FaultTolerant, workload.generate(16, 2));
        assert_eq!(report.metrics().total_msgs(), ref_msgs, "{workload}");
        assert_eq!(report.metrics().total_words(), ref_words, "{workload}");
        assert_eq!(report.elapsed(), reference.elapsed(), "{workload}");
    }
}

#[test]
fn block_workloads_sort() {
    for workload in Workload::ALL {
        let keys = workload.generate(128, 5);
        let expected = common::sorted(&keys);
        let report = SortBuilder::new(Algorithm::FaultTolerant)
            .keys(keys)
            .nodes(8)
            .run()
            .expect("honest run");
        assert_eq!(report.output(), expected, "{workload} with m = 16");
    }
}

#[test]
fn presorted_input_is_not_a_shortcut() {
    // An oblivious network does the same work on sorted input; elapsed time
    // must match the random-input run, not beat it.
    let sorted = run(Algorithm::NonRedundant, Workload::Presorted.generate(32, 0));
    let random = run(
        Algorithm::NonRedundant,
        Workload::UniformRandom.generate(32, 0),
    );
    assert_eq!(sorted.elapsed(), random.elapsed());
}
