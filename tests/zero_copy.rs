//! Acceptance tests for the zero-copy hot path: the borrowed [`MsgView`]
//! decoder must agree with the owned decoder on every wire image (valid or
//! truncated), and the global wire-buffer pool must have reclaimed every
//! lease once a TCP run drains — the "no steady-state allocations" claim,
//! observed from outside.

mod common;

use std::time::{Duration, Instant};

use aoft::net::pool;
use aoft::net::wire::{from_bytes, to_bytes};
use aoft::sim::{TcpConfig, TcpTransport};
use aoft::sort::{Algorithm, Block, LbsWire, Msg, MsgView, SortBuilder};
use proptest::prelude::*;

/// Assembles a `Msg` from raw generated parts. `kind` selects the variant;
/// the slot list carries a presence flag per slot so absent (`None`)
/// piggyback entries are exercised too.
fn build_msg(
    kind: u8,
    data_keys: Vec<i32>,
    header: (u32, u32),
    slots: Vec<(bool, Vec<i32>)>,
) -> Msg {
    let data = Block::from_wire(data_keys);
    let (span_start, block_len) = header;
    let lbs = LbsWire {
        span_start,
        block_len,
        slots: slots
            .into_iter()
            .map(|(filled, keys)| filled.then(|| Block::from_wire(keys)))
            .collect(),
    };
    match kind {
        0 => Msg::Data(data),
        1 => Msg::Tagged { data, lbs },
        _ => Msg::Lbs(lbs),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The borrowed view decodes every encodable message to exactly the
    /// value the owned decoder produces, and materializing it re-encodes
    /// byte-identically — zero-copy must be an optimization, never a
    /// semantic fork.
    #[test]
    fn view_decode_equals_owned_decode(
        kind in 0u8..3,
        data_keys in prop::collection::vec(-1000i32..1000, 0..12),
        header in (0u32..16, 0u32..8),
        slots in prop::collection::vec(
            (any::<bool>(), prop::collection::vec(-1000i32..1000, 0..8)),
            0..5,
        ),
    ) {
        let msg = build_msg(kind, data_keys, header, slots);
        let bytes = to_bytes(&msg);

        let owned = from_bytes::<Msg>(&bytes).expect("owned decode of own encoding");
        let view = MsgView::parse(&bytes).expect("view parse of own encoding");
        prop_assert_eq!(&view.to_msg(), &owned);
        prop_assert_eq!(&owned, &msg);

        // Round-trip through the view is byte-identical.
        prop_assert_eq!(to_bytes(&view.to_msg()), bytes);
    }

    /// Both decoders accept and reject the same byte strings: every strict
    /// prefix of a valid encoding gets the same verdict from the view as
    /// from the owned path (a view that accepted garbage the owned decoder
    /// rejects would be an attack surface, not an optimization).
    #[test]
    fn view_and_owned_agree_on_truncations(
        kind in 0u8..3,
        data_keys in prop::collection::vec(-1000i32..1000, 0..12),
        header in (0u32..16, 0u32..8),
        slots in prop::collection::vec(
            (any::<bool>(), prop::collection::vec(-1000i32..1000, 0..8)),
            0..5,
        ),
    ) {
        let msg = build_msg(kind, data_keys, header, slots);
        let bytes = to_bytes(&msg);
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            let owned_ok = from_bytes::<Msg>(prefix).is_ok();
            let view_ok = MsgView::parse(prefix).is_ok();
            prop_assert_eq!(
                owned_ok, view_ok,
                "decoders disagree at cut {} of {}", cut, bytes.len()
            );
        }
    }
}

/// Every wire buffer leased from the global pool during a full d=4 `S_FT`
/// run over loopback TCP comes back: once the writer threads drain, the
/// outstanding-lease count returns to zero. This is the steady-state
/// allocation discipline observed end to end — buffers cycle through the
/// pool instead of being allocated per message.
#[test]
fn pool_reclaims_all_leases_after_d4_tcp_run() {
    let keys: Vec<i32> = (0..64i32).map(|x| x.wrapping_mul(-61) % 53).collect();
    let transport = TcpTransport::bind(TcpConfig::default()).expect("bind loopback listener");
    let report = SortBuilder::new(Algorithm::FaultTolerant)
        .keys(keys.clone())
        .nodes(16)
        .recv_timeout(Duration::from_millis(1500))
        .run_on(transport)
        .expect("clean d=4 TCP run");
    let expected = common::sorted(&keys);
    assert_eq!(report.output(), expected.as_slice());

    // Writer threads may still be flushing their last frames when run_on
    // returns; give them a bounded moment to hand their leases back.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let outstanding = pool::outstanding();
        if outstanding == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "pool leaked {outstanding} lease(s) after the run drained"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
